"""The shipped rules (RPR001–RPR009).

Each rule encodes an invariant this repo has broken and fixed by hand
at least once; the rule docstrings cite the incident. All checks are
syntactic (stdlib ``ast``): no imports are executed, so a rule firing
means the *pattern* is present — a suppression comment with a reason
is the escape hatch for the cases where the pattern is deliberate.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .core import Finding, ModuleContext, Rule, register_rule
from .wire_baseline import WIRE_BASELINE

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

class _Imports:
    """Resolve call targets to dotted names via the module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.modules[bound] = (alias.name if alias.asname
                                           else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def dotted(self, func: ast.expr) -> str | None:
        """``warnings.warn`` / ``time.time`` style name for a callee."""
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                         ast.Name):
            module = self.modules.get(func.value.id)
            if module is not None:
                return f"{module}.{func.attr}"
        return None


def _imports(ctx: ModuleContext) -> _Imports:
    cached = getattr(ctx, "_rpr_imports", None)
    if cached is None:
        cached = _Imports(ctx.tree)
        ctx._rpr_imports = cached  # type: ignore[attr-defined]
    return cached


def _walk_same_scope(body: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes
    (code in a closure does not run where it is written)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPES):
                stack.append(child)


def _subtree_has(node: ast.AST, predicate) -> bool:
    return any(predicate(n) for n in ast.walk(node))


# ----------------------------------------------------------------------
# RPR001 — lock discipline
# ----------------------------------------------------------------------

@register_rule
class LockDiscipline(Rule):
    """``*_locked`` callees assume the caller holds ``self._lock``.

    The scheduler (service/scheduler.py) names every
    must-hold-the-lock helper with a ``_locked`` suffix and guards a
    non-reentrant ``threading.Lock``; calling one unguarded corrupts
    slot state, and re-acquiring inside one deadlocks. This rule makes
    both mistakes mechanical: a ``*_locked`` call must sit lexically
    inside ``with <recv>._lock:`` (in the *same* function scope — a
    ``with`` outside a closure does not cover the closure body) or
    inside a function itself named ``*_locked``; and a ``*_locked``
    body must not take the lock again.
    """

    id = "RPR001"
    name = "lock-discipline"
    description = ("*_locked calls need a lexical `with self._lock:`; "
                   "*_locked bodies must not re-acquire the lock")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        lock = ctx.config.lock_attr
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                callee = self._callee_name(node)
                if (callee is not None and callee.endswith("_locked")
                        and not self._held(ctx, node, lock)):
                    yield self.finding(
                        ctx, node,
                        f"call to {callee}() outside a lexical "
                        f"`with <recv>.{lock}:` block (and not from a "
                        "*_locked method); the callee assumes the lock "
                        "is held")
            elif isinstance(node, _FUNCS) and node.name.endswith("_locked"):
                yield from self._reacquisitions(ctx, node, lock)

    @staticmethod
    def _callee_name(call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        if isinstance(call.func, ast.Name):
            return call.func.id
        return None

    def _held(self, ctx: ModuleContext, call: ast.Call,
              lock: str) -> bool:
        recv = (call.func.value if isinstance(call.func, ast.Attribute)
                else None)
        recv_dump = None if recv is None else ast.dump(recv)
        for anc in ctx.ancestors(call):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    if (isinstance(expr, ast.Attribute)
                            and expr.attr == lock
                            and (recv_dump is None
                                 or ast.dump(expr.value) == recv_dump)):
                        return True
            elif isinstance(anc, _FUNCS):
                # Caller contract: a *_locked method may call sibling
                # *_locked methods on self without re-taking the lock.
                return (anc.name.endswith("_locked")
                        and (recv is None
                             or (isinstance(recv, ast.Name)
                                 and recv.id == "self")))
            elif isinstance(anc, ast.Lambda):
                return False
        return False

    def _reacquisitions(self, ctx: ModuleContext,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef,
                        lock: str) -> Iterator[Finding]:
        for node in _walk_same_scope(fn.body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Attribute) and expr.attr == lock:
                        yield self.finding(
                            ctx, node,
                            f"{fn.name}() re-acquires .{lock} it already "
                            "holds by contract (deadlock with a "
                            "non-reentrant lock)")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "acquire"
                  and isinstance(node.func.value, ast.Attribute)
                  and node.func.value.attr == lock):
                yield self.finding(
                    ctx, node,
                    f"{fn.name}() calls .{lock}.acquire() on a lock it "
                    "already holds by contract")


# ----------------------------------------------------------------------
# RPR002 — complex in-place arithmetic in kernel modules
# ----------------------------------------------------------------------

@register_rule
class ComplexInplace(Rule):
    """No in-place (or elidable) complex multiplies in kernel code.

    numpy's in-place complex multiply can round the final ulp
    differently from the out-of-place expression, and numpy elides
    temporaries — ``0.25j * hankel1(...)`` may multiply *in place* into
    the call's freshly returned buffer depending on alignment. That is
    exactly how per-sample and batched solves diverged in
    ``greens/freespace.py`` before PR 5 materialized the Hankel terms.
    Scoped to ``kernel-globs`` (``greens/``, ``swm/``); flags
    ``*=``/``/=``/``**=``/``@=`` statements and ``Call``-operand
    multiplies whose other operand carries an imaginary constant.
    Fix by naming the call result first (``h0 = hankel1(...)``).
    """

    id = "RPR002"
    name = "complex-inplace"
    description = ("in-place or temporary-eliding complex multiplies "
                   "in kernel modules (greens/, swm/)")

    _AUG_OPS = (ast.Mult, ast.Div, ast.Pow, ast.MatMult)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.matches(ctx.config.kernel_globs):
            return
        flagged: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, self._AUG_OPS)):
                op = type(node.op).__name__
                yield self.finding(
                    ctx, node,
                    f"in-place {op} ({self._aug_symbol(node.op)}) in a "
                    "kernel module; in-place complex multiplies can "
                    "round differently from the out-of-place form — "
                    "assign to a fresh name instead")
            elif (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mult)
                    and node.lineno not in flagged
                    and self._elidable(node)):
                flagged.add(node.lineno)
                yield self.finding(
                    ctx, node,
                    "imaginary-constant multiply against a call result; "
                    "numpy may elide the temporary and multiply in "
                    "place, changing the final ulp by buffer alignment "
                    "— materialize the call result to a local first")

    @staticmethod
    def _aug_symbol(op: ast.operator) -> str:
        return {"Mult": "*=", "Div": "/=", "Pow": "**=",
                "MatMult": "@="}[type(op).__name__]

    @staticmethod
    def _elidable(node: ast.BinOp) -> bool:
        # The imaginary constant must sit in the multiply chain itself;
        # one buried inside a call's arguments (``wofz(1j * z)``) does
        # not multiply that call's returned buffer.
        def has_imag(n: ast.AST) -> bool:
            if isinstance(n, ast.Constant):
                return isinstance(n.value, complex)
            if isinstance(n, ast.Call):
                return False
            return any(has_imag(c) for c in ast.iter_child_nodes(n))

        def has_call(n: ast.AST) -> bool:
            return _subtree_has(n, lambda x: isinstance(x, ast.Call))

        return ((has_imag(node.left) and has_call(node.right))
                or (has_call(node.left) and has_imag(node.right)))


# ----------------------------------------------------------------------
# RPR003 — hash purity of Options/Spec dataclasses
# ----------------------------------------------------------------------

@register_rule
class HashPurity(Rule):
    """Every Options/Spec field is hashed or documented as excluded.

    ``to_spec()`` is the content-hash boundary: a field it silently
    drops changes behavior without changing the hash (or, excluded on
    purpose, must never reach solver payloads). ``check_finite``
    falling out of the hash — splitting cache entries — is the PR 5
    incident. A dataclass named ``*Options``/``*Spec`` with a
    ``to_spec`` method must either consume each field (``self.f`` or
    ``asdict(self)`` without a matching ``.pop("f")``) or list it in a
    class-level ``HASH_EXCLUDED = frozenset({...})``. Stale or
    contradictory exclusions are findings too.
    """

    id = "RPR003"
    name = "hash-purity"
    description = ("*Options/*Spec dataclass fields must be consumed by "
                   "to_spec or listed in HASH_EXCLUDED")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Options")
                    or node.name.endswith("Spec")):
                continue
            if not self._is_dataclass(node):
                continue
            to_spec = next(
                (n for n in node.body if isinstance(n, _FUNCS)
                 and n.name == "to_spec"), None)
            if to_spec is None:
                continue
            yield from self._check_class(ctx, node, to_spec)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = (target.attr if isinstance(target, ast.Attribute)
                    else getattr(target, "id", None))
            if name == "dataclass":
                return True
        return False

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef,
                     to_spec: ast.AST) -> Iterator[Finding]:
        fields: dict[str, ast.AnnAssign] = {}
        excluded: set[str] = set()
        excluded_node: ast.AST | None = None
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.dump(stmt.annotation)):
                fields[stmt.target.id] = stmt
            elif (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "HASH_EXCLUDED"
                            for t in stmt.targets)):
                excluded_node = stmt
                excluded = {
                    n.value for n in ast.walk(stmt.value)
                    if isinstance(n, ast.Constant)
                    and isinstance(n.value, str)
                }
        consumed, popped, asdict_all = self._consumption(to_spec)
        if asdict_all:
            consumed |= set(fields) - popped
        for name, stmt in fields.items():
            if name in consumed and name in excluded:
                yield self.finding(
                    ctx, stmt,
                    f"{cls.name}.{name} is listed in HASH_EXCLUDED but "
                    "to_spec still consumes it; the exclusion is a lie "
                    "— drop it or stop hashing the field")
            elif name not in consumed and name not in excluded:
                yield self.finding(
                    ctx, stmt,
                    f"{cls.name}.{name} is neither consumed by to_spec "
                    "nor listed in HASH_EXCLUDED; a behavior-affecting "
                    "field outside the content hash splits or poisons "
                    "the cache")
        for name in sorted(excluded - set(fields)):
            yield self.finding(
                ctx, excluded_node or cls,
                f"{cls.name}.HASH_EXCLUDED names {name!r} which is not "
                "a dataclass field (stale exclusion)")

    @staticmethod
    def _consumption(to_spec: ast.AST) -> tuple[set[str], set[str], bool]:
        consumed: set[str] = set()
        popped: set[str] = set()
        asdict_all = False
        for node in ast.walk(to_spec):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                consumed.add(node.attr)
            elif isinstance(node, ast.Call):
                func = node.func
                callee = (func.attr if isinstance(func, ast.Attribute)
                          else getattr(func, "id", None))
                if (callee == "asdict" and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "self"):
                    asdict_all = True
                elif (callee == "pop" and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    popped.add(node.args[0].value)
        return consumed, popped, asdict_all


# ----------------------------------------------------------------------
# RPR004 — wire compatibility
# ----------------------------------------------------------------------

@register_rule
class WireCompat(Rule):
    """Wire messages stay decodable by every COMPAT_WIRE_VERSIONS peer.

    The contract lives in ``repro.analysis.wire_baseline``: per tag,
    which fields every compatible peer sends (``required``) and which
    arrived later (``optional``). In modules matching ``wire-globs``:
    dataclass fields named in ``optional`` (or unknown to the
    baseline) must carry defaults; decoder functions (resolved through
    the module's ``_DECODERS`` dict) must not hard-read
    (``doc["f"]`` / ``_expect``) anything outside ``required``; and
    the decoder dict and baseline must cover the same tag set.
    """

    id = "RPR004"
    name = "wire-compat"
    description = ("wire dataclasses need defaults, and decoders .get-"
                   "side reads, for fields newer than the baseline")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.matches(ctx.config.wire_globs):
            return
        decoder_map, decoders_node = self._decoder_map(ctx)
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name in WIRE_BASELINE):
                yield from self._check_dataclass(ctx, node)
            elif isinstance(node, _FUNCS) and node.name in decoder_map:
                yield from self._check_decoder(ctx, node,
                                               decoder_map[node.name])
        if decoders_node is not None:
            known = set(decoder_map.values())
            for tag in sorted(set(WIRE_BASELINE) - known):
                yield self.finding(
                    ctx, decoders_node,
                    f"wire baseline tag {tag!r} has no decoder in "
                    "_DECODERS; documents from compatible peers would "
                    "stop decoding")
            for tag in sorted(known - set(WIRE_BASELINE)):
                yield self.finding(
                    ctx, decoders_node,
                    f"decoder tag {tag!r} is not in the wire baseline; "
                    "record it in repro.analysis.wire_baseline (with "
                    "its since-version and field sets)")

    @staticmethod
    def _decoder_map(ctx: ModuleContext
                     ) -> tuple[dict[str, str], ast.AST | None]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "_DECODERS"
                            for t in node.targets)
                    and isinstance(node.value, ast.Dict)):
                mapping: dict[str, str] = {}
                for key, value in zip(node.value.keys, node.value.values):
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(value, ast.Name)):
                        mapping[value.id] = key.value
                return mapping, node
        return {}, None

    def _check_dataclass(self, ctx: ModuleContext,
                         cls: ast.ClassDef) -> Iterator[Finding]:
        entry = WIRE_BASELINE[cls.name]
        required = set(entry["required"])
        seen: set[str] = set()
        for stmt in cls.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.dump(stmt.annotation)):
                continue
            name = stmt.target.id
            seen.add(name)
            if stmt.value is None and name not in required:
                yield self.finding(
                    ctx, stmt,
                    f"wire field {cls.name}.{name} has no default but "
                    "is not in the baseline's required set; documents "
                    "from older peers omit it and would fail to decode "
                    "— add a default (and record it as optional in "
                    "wire_baseline)")
        for name in sorted(required - seen):
            yield self.finding(
                ctx, cls,
                f"baseline-required wire field {cls.name}.{name} is "
                "missing from the dataclass; encoded documents would "
                "no longer satisfy the compat contract")

    def _check_decoder(self, ctx: ModuleContext,
                       fn: ast.FunctionDef | ast.AsyncFunctionDef,
                       tag: str) -> Iterator[Finding]:
        entry = WIRE_BASELINE.get(tag)
        if entry is None:
            return
        required = set(entry["required"])
        doc = fn.args.args[0].arg if fn.args.args else None
        if doc is None:
            return
        for node in ast.walk(fn):
            field = None
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == doc
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                field = node.slice.value
                if field not in required:
                    yield self.finding(
                        ctx, node,
                        f"decoder for {tag!r} hard-reads "
                        f"{doc}[{field!r}] but the baseline does not "
                        "require that field on the wire; use "
                        f"{doc}.get({field!r}, ...) so older documents "
                        "keep decoding")
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "_expect"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == doc):
                for arg in node.args[1:]:
                    if (isinstance(arg, ast.Constant)
                            and isinstance(arg.value, str)
                            and arg.value not in required):
                        yield self.finding(
                            ctx, node,
                            f"decoder for {tag!r} requires field "
                            f"{arg.value!r} via _expect but the "
                            "baseline does not guarantee it; use "
                            f"{doc}.get({arg.value!r}, ...) instead")


# ----------------------------------------------------------------------
# RPR005 — warnings.warn without stacklevel
# ----------------------------------------------------------------------

@register_rule
class WarnStacklevel(Rule):
    """``warnings.warn`` must say whose line the warning points at.

    Without ``stacklevel`` the warning blames the library line that
    raised it instead of the caller that configured it — the
    attribution bug PR 4 threaded ``stacklevel`` through both solvers
    to fix. Accepts the keyword or a third positional argument.
    """

    id = "RPR005"
    name = "warn-stacklevel"
    description = "warnings.warn calls must pass an explicit stacklevel"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = _imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if imports.dotted(node.func) != "warnings.warn":
                continue
            has_kw = any(kw.arg == "stacklevel" for kw in node.keywords)
            if not has_kw and len(node.args) < 3:
                yield self.finding(
                    ctx, node,
                    "warnings.warn without an explicit stacklevel; the "
                    "warning will point at this line instead of the "
                    "caller that should change its code")


# ----------------------------------------------------------------------
# RPR006 — durations from wall-clock differences
# ----------------------------------------------------------------------

@register_rule
class MonotonicDuration(Rule):
    """Durations come from monotonic clocks, not ``time.time()`` pairs.

    Wall clocks step under NTP; a duration computed as a difference of
    two ``time.time()`` reads can be negative or wildly wrong (the
    scheduler grew a ``time.monotonic()`` twin for exactly this).
    Evidence-based: a subtraction is flagged only when *both* operands
    provably carry wall-clock values — direct ``time.time()`` calls,
    locals assigned from one, or attributes/keywords anywhere in the
    module that are fed from one (``self.t0 = time.time()``,
    ``Foo(created_unix=time.time())``,
    ``field(default_factory=time.time)``). ``time.time() - deadline``
    does not flag: deadlines are not evidenced.
    """

    id = "RPR006"
    name = "monotonic-duration"
    description = ("durations must not be differences of time.time() "
                   "wall-clock reads")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = _imports(ctx)
        tainted_attrs = self._tainted_attrs(ctx, imports)
        local_cache: dict[ast.AST, set[str]] = {}
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Sub)):
                continue
            fn = ctx.enclosing_function(node)
            if fn not in local_cache:
                local_cache[fn] = self._tainted_locals(fn, imports)
            locals_ = local_cache[fn]
            if (self._evidenced(node.left, imports, tainted_attrs, locals_)
                    and self._evidenced(node.right, imports,
                                        tainted_attrs, locals_)):
                yield self.finding(
                    ctx, node,
                    "duration computed as a difference of wall-clock "
                    "time.time() reads; wall clocks step under NTP — "
                    "pair time.monotonic() or time.perf_counter() "
                    "reads instead (keep time.time() for timestamps "
                    "only)")

    @staticmethod
    def _is_wallclock_call(node: ast.AST, imports: _Imports) -> bool:
        return (isinstance(node, ast.Call)
                and imports.dotted(node.func) == "time.time")

    def _tainted_attrs(self, ctx: ModuleContext,
                       imports: _Imports) -> set[str]:
        tainted: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_wallclock_call(
                    node.value, imports):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        tainted.add(target.attr)
            elif (isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and self._is_wallclock_call(node.value, imports)
                    and isinstance(node.target, ast.Attribute)):
                tainted.add(node.target.attr)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    if self._is_wallclock_call(kw.value, imports):
                        tainted.add(kw.arg)
                    elif (kw.arg == "default_factory"
                            and imports.dotted(kw.value) == "time.time"):
                        parent = ctx.parents.get(node)
                        if (isinstance(parent, ast.AnnAssign)
                                and isinstance(parent.target, ast.Name)):
                            tainted.add(parent.target.id)
        return tainted

    def _tainted_locals(self, fn: ast.AST | None,
                        imports: _Imports) -> set[str]:
        if fn is None:
            return set()
        tainted: set[str] = set()
        for node in _walk_same_scope(fn.body):  # type: ignore[attr-defined]
            if isinstance(node, ast.Assign) and self._is_wallclock_call(
                    node.value, imports):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _evidenced(self, expr: ast.AST, imports: _Imports,
                   attrs: set[str], locals_: set[str]) -> bool:
        if self._is_wallclock_call(expr, imports):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in locals_
        if isinstance(expr, ast.Attribute):
            return expr.attr in attrs
        if isinstance(expr, ast.BoolOp):
            return all(self._evidenced(v, imports, attrs, locals_)
                       for v in expr.values)
        if isinstance(expr, ast.IfExp):
            return (self._evidenced(expr.body, imports, attrs, locals_)
                    and self._evidenced(expr.orelse, imports, attrs,
                                        locals_))
        return False


# ----------------------------------------------------------------------
# RPR007 — broad except without a stated reason
# ----------------------------------------------------------------------

@register_rule
class BroadExcept(Rule):
    """``except Exception`` must say why it is allowed to be broad.

    The executors/scheduler/server/worker boundaries catch everything
    on purpose (first-failure-wins, crash containment) — but each such
    site must carry a ``# noqa: BLE001 — reason`` comment on the
    ``except`` line so the intent is auditable. A bare broad catch is
    indistinguishable from a swallowed bug.
    """

    id = "RPR007"
    name = "broad-except"
    description = ("`except Exception` needs a `# noqa: BLE001 — "
                   "reason` justification on the except line")

    _NOQA_RE = re.compile(r"#\s*noqa:\s*BLE001\b[\s:\-—–]*(\S.*)?$")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            line = (ctx.lines[node.lineno - 1]
                    if node.lineno <= len(ctx.lines) else "")
            match = self._NOQA_RE.search(line)
            if match is None:
                yield self.finding(
                    ctx, node,
                    "broad `except Exception` without a justification; "
                    "add `# noqa: BLE001 — reason` on the except line "
                    "or narrow the exception type")
            elif not (match.group(1) or "").strip():
                yield self.finding(
                    ctx, node,
                    "broad `except Exception` carries a noqa comment "
                    "but no reason; say why the broad catch is safe")

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        names = []
        if isinstance(type_node, ast.Name):
            names = [type_node.id]
        elif isinstance(type_node, ast.Tuple):
            names = [e.id for e in type_node.elts
                     if isinstance(e, ast.Name)]
        return any(n in ("Exception", "BaseException") for n in names)


# ----------------------------------------------------------------------
# RPR008 — telemetry no-op discipline
# ----------------------------------------------------------------------

@register_rule
class TelemetryNoopDiscipline(Rule):
    """Instrumentation must cost one flag check when telemetry is off.

    ``span(...)`` and the metric methods (``.inc``/``.observe``/
    ``.set`` on ``_M_*`` / ``self._m_*`` registries) no-op internally
    when ``REPRO_TELEMETRY`` is disabled — but *argument* expressions
    are evaluated at the call site regardless. An f-string, a
    ``.format()``, a comprehension, or a non-trivial call in the
    argument list silently taxes every disabled run (the overhead the
    hot-path benchmarks exist to catch, previously guarded only by
    convention). In modules matching ``telemetry-globs``, each
    instrumentation call must either take cheap arguments (names,
    attributes, arithmetic, whitelisted builtins like ``len``/``float``
    and monotonic-clock reads) or sit behind an explicit
    ``telemetry.enabled()`` guard — an enclosing ``if`` or a leading
    ``if not ...enabled(): return`` in the enclosing function.
    """

    id = "RPR008"
    name = "telemetry-noop"
    description = ("instrumentation arguments must stay cheap (or sit "
                   "behind an enabled() guard) when telemetry is off")

    _CHEAP_BUILTINS = frozenset({"len", "int", "float", "str", "bool",
                                 "abs", "min", "max", "round"})
    _CHEAP_DOTTED = frozenset({"time.perf_counter", "time.monotonic",
                               "time.time", "os.getpid"})
    _COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.matches(ctx.config.telemetry_globs):
            return
        imports = _imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._instrumentation_kind(node)
            if kind is None or self._guarded(ctx, node):
                continue
            offense = self._eager_offense(node, imports)
            if offense is not None:
                yield self.finding(
                    ctx, node,
                    f"{kind} {offense} even when telemetry is "
                    "disabled; bind the value outside the call, pass "
                    "raw operands, or put the site behind "
                    "`telemetry.enabled()`")

    @staticmethod
    def _instrumentation_kind(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "span":
            return "span() argument"
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "span":
            return "span() argument"
        if func.attr in ("inc", "observe", "set"):
            recv = func.value
            # Metric objects follow the repo convention: module-level
            # _M_UPPER names or self._m_lower attributes. Anything else
            # (`self._stop.set()`, `calibrator.observe(...)`) is real
            # work, not instrumentation.
            if ((isinstance(recv, ast.Name) and recv.id.startswith("_M_"))
                    or (isinstance(recv, ast.Attribute)
                        and recv.attr.startswith("_m_"))):
                return f"metric .{func.attr}() argument"
        return None

    @staticmethod
    def _is_enabled_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and ((isinstance(node.func, ast.Name)
                      and node.func.id == "enabled")
                     or (isinstance(node.func, ast.Attribute)
                         and node.func.attr == "enabled")))

    def _guarded(self, ctx: ModuleContext, call: ast.Call) -> bool:
        for anc in ctx.ancestors(call):
            if (isinstance(anc, ast.If)
                    and _subtree_has(anc.test, self._is_enabled_call)):
                return True
            if isinstance(anc, _SCOPES):
                # A guard outside a closure does not cover the closure
                # body; but a function opening with
                # `if not ...enabled(): return` covers everything in it.
                body = getattr(anc, "body", None) or []
                if not isinstance(body, list):
                    body = []
                stmts = [s for s in body
                         if not (isinstance(s, ast.Expr)
                                 and isinstance(s.value, ast.Constant)
                                 and isinstance(s.value.value, str))]
                first = stmts[0] if stmts else None
                return (isinstance(first, ast.If)
                        and isinstance(first.test, ast.UnaryOp)
                        and isinstance(first.test.op, ast.Not)
                        and _subtree_has(first.test.operand,
                                         self._is_enabled_call)
                        and any(isinstance(s, ast.Return)
                                for s in first.body))
        return False

    def _eager_offense(self, call: ast.Call,
                       imports: _Imports) -> str | None:
        exprs = list(call.args) + [kw.value for kw in call.keywords]
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    func = node.func
                    if (isinstance(func, ast.Name)
                            and func.id in self._CHEAP_BUILTINS):
                        continue
                    if imports.dotted(func) in self._CHEAP_DOTTED:
                        continue
                    name = (func.attr if isinstance(func, ast.Attribute)
                            else getattr(func, "id", "<expr>"))
                    return f"calls {name}() eagerly"
                if isinstance(node, ast.JoinedStr) and any(
                        isinstance(v, ast.FormattedValue)
                        for v in node.values):
                    return "builds an f-string eagerly"
                if (isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Mod)
                        and isinstance(node.left, ast.Constant)
                        and isinstance(node.left.value, str)):
                    return "%-formats a string eagerly"
                if isinstance(node, self._COMPREHENSIONS):
                    return "evaluates a comprehension eagerly"
        return None


# ----------------------------------------------------------------------
# RPR009 — wire-baseline freshness
# ----------------------------------------------------------------------

@register_rule
class WireBaselineFreshness(Rule):
    """``wire_baseline`` must mirror what the decoders actually read.

    RPR004 checks the *compat* direction (no hard read outside
    ``required``); this rule checks the *freshness* direction — the
    documented contract cannot silently trail the code. Per decoder
    (resolved through ``_DECODERS``): every ``doc.get("f", ...)`` read
    must be recorded in the baseline (new optional fields land with a
    ``.get``-side decode, and recording them is step two of the growth
    contract), and every baseline ``optional`` field must still be read
    somewhere in its decoder (a field nobody decodes is a stale table
    entry). Decoders with no by-name reads at all — the
    ``_strip`` → constructor style, where constructor defaults absorb
    old documents — are exempt from the staleness direction.
    """

    id = "RPR009"
    name = "wire-baseline-freshness"
    description = ("wire_baseline optional/required sets must match the "
                   "decoders' actual .get and hard reads")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.matches(ctx.config.wire_globs):
            return
        decoder_map, _ = WireCompat._decoder_map(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNCS) and node.name in decoder_map:
                yield from self._check_decoder(ctx, node,
                                               decoder_map[node.name])

    def _check_decoder(self, ctx: ModuleContext,
                       fn: ast.FunctionDef | ast.AsyncFunctionDef,
                       tag: str) -> Iterator[Finding]:
        entry = WIRE_BASELINE.get(tag)
        if entry is None:
            return  # RPR004 already reports the missing baseline entry
        doc = fn.args.args[0].arg if fn.args.args else None
        if doc is None:
            return
        hard, soft = self._reads(fn, doc)
        known = set(entry["required"]) | set(entry["optional"])
        for field in sorted(soft - known):
            yield self.finding(
                ctx, fn,
                f"decoder for {tag!r} reads {doc}.get({field!r}) but "
                "the baseline does not record that field; add it under "
                "optional in repro.analysis.wire_baseline (recording "
                "the field is step two of growing the format)")
        if hard or soft:
            for field in sorted(set(entry["optional"]) - soft - hard):
                yield self.finding(
                    ctx, fn,
                    f"baseline lists optional wire field {field!r} for "
                    f"{tag!r} but the decoder never reads it; the table "
                    "is stale — drop the entry or .get the field in "
                    f"{fn.name}()")

    @staticmethod
    def _reads(fn: ast.AST, doc: str) -> tuple[set[str], set[str]]:
        """Fields ``fn`` hard-reads (``doc["f"]`` / ``_expect``) and
        ``.get``-reads off the ``doc`` parameter, by string literal."""
        hard: set[str] = set()
        soft: set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == doc
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                hard.add(node.slice.value)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name) and func.id == "_expect"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == doc):
                    hard.update(a.value for a in node.args[1:]
                                if isinstance(a, ast.Constant)
                                and isinstance(a.value, str))
                elif (isinstance(func, ast.Attribute)
                        and func.attr == "get"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == doc
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    soft.add(node.args[0].value)
        return hard, soft
