"""Command-line entry point: ``python -m repro.analysis [paths]``.

Also reachable as ``repro-experiments lint``. Exit status: 0 when the
tree is clean (suppressed findings do not count), 1 when unsuppressed
findings remain, 2 on usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from ..errors import ConfigurationError
from .config import load_config
from .core import all_rules, analyze_paths
from .report import render_json_text, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant linter for the repro codebase "
                    "(lock discipline, hash purity, wire compat, "
                    "kernel numerics).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: the paths from "
             "[tool.repro.analysis], falling back to 'src')")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule IDs to run exclusively "
             "(e.g. RPR001,RPR006)")
    parser.add_argument(
        "--disable", metavar="IDS",
        help="comma-separated rule IDs to skip, in addition to the "
             "config's disable list")
    parser.add_argument(
        "--pyproject", metavar="PATH",
        help="pyproject.toml to read [tool.repro.analysis] from "
             "(default: nearest one at or above the cwd)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print suppressed findings in text mode")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    try:
        config = load_config(pyproject=args.pyproject)
        if args.disable:
            extra = tuple(s.strip() for s in args.disable.split(",")
                          if s.strip())
            config = replace(config,
                             disable=tuple(config.disable) + extra)
        select = None
        if args.select:
            select = [s.strip() for s in args.select.split(",")
                      if s.strip()]
        paths: list[str | Path] = list(args.paths) or list(config.paths)
        findings, files_scanned = analyze_paths(paths, config,
                                                select=select)
    except ConfigurationError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    if args.format == "json":
        sys.stdout.write(render_json_text(findings, files_scanned))
    else:
        sys.stdout.write(render_text(findings, files_scanned,
                                     verbose=args.verbose))
    return 1 if any(not f.suppressed for f in findings) else 0
