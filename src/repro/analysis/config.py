"""Configuration for the invariant linter.

Read from the ``[tool.repro.analysis]`` table of ``pyproject.toml``::

    [tool.repro.analysis]
    paths = ["src"]
    exclude = ["*/_vendored/*"]
    disable = []
    kernel-globs = ["*/greens/*.py", "*/swm/*.py"]
    wire-globs = ["*/service/wire.py", "*/engine/results.py"]
    telemetry-globs = ["*/engine/*.py", "*/swm/*.py", "*/service/*.py"]
    lock-attr = "_lock"

Every key is optional; table keys may use dashes or underscores. On
interpreters without :mod:`tomllib` (Python 3.10) a minimal fallback
parser handles exactly this subset (one table, string and
list-of-string values), so configuration behaves identically across
the CI matrix.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..errors import ConfigurationError

_SECTION = "tool.repro.analysis"


@dataclass(frozen=True)
class AnalysisConfig:
    """Resolved linter configuration (defaults match this repo)."""

    #: Paths scanned when the CLI gets no positional arguments.
    paths: tuple[str, ...] = ("src",)
    #: fnmatch globs (posix paths) excluded from the scan.
    exclude: tuple[str, ...] = ()
    #: Rule IDs disabled wholesale.
    disable: tuple[str, ...] = ()
    #: Modules subject to the kernel-numerics rules (RPR002).
    kernel_globs: tuple[str, ...] = ("*/greens/*.py", "*/swm/*.py")
    #: Modules carrying the wire format (RPR004, RPR009).
    wire_globs: tuple[str, ...] = ("*/service/wire.py",
                                   "*/engine/results.py")
    #: Modules whose instrumentation must be a no-op when telemetry is
    #: disabled (RPR008).
    telemetry_globs: tuple[str, ...] = ("*/engine/*.py", "*/swm/*.py",
                                        "*/service/*.py")
    #: Attribute name of the lock guarding ``*_locked`` methods.
    lock_attr: str = "_lock"


def _coerce(key: str, value: object) -> object:
    if key in ("lock_attr",):
        if not isinstance(value, str) or not value:
            raise ConfigurationError(
                f"[{_SECTION}] {key} must be a non-empty string, "
                f"got {value!r}"
            )
        return value
    if not isinstance(value, (list, tuple)) or not all(
            isinstance(v, str) for v in value):
        raise ConfigurationError(
            f"[{_SECTION}] {key} must be a list of strings, got {value!r}"
        )
    return tuple(value)


def config_from_mapping(table: dict) -> AnalysisConfig:
    """Build a config from a raw ``[tool.repro.analysis]`` table."""
    cfg = AnalysisConfig()
    updates = {}
    for raw_key, value in table.items():
        key = raw_key.replace("-", "_")
        if key not in AnalysisConfig.__dataclass_fields__:
            raise ConfigurationError(
                f"[{_SECTION}] unknown key {raw_key!r} (known: "
                f"{sorted(k.replace('_', '-') for k in AnalysisConfig.__dataclass_fields__)})"
            )
        updates[key] = _coerce(key, value)
    return replace(cfg, **updates)


# ----------------------------------------------------------------------
# pyproject.toml loading
# ----------------------------------------------------------------------

_KEY_RE = re.compile(r"^\s*([\w-]+)\s*=\s*(.+?)\s*$")
_STR_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_minimal_toml(text: str) -> dict:
    """Extract ``[tool.repro.analysis]`` without :mod:`tomllib`.

    Handles exactly the subset this config uses: a flat table of
    ``key = "string"`` and ``key = ["a", "b"]`` entries (lists may span
    lines). Anything fancier should run on Python 3.11+.
    """
    table: dict = {}
    in_section = False
    pending_key: str | None = None
    pending_items: list[str] = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].strip() if not _STR_RE.search(
            line) else line.strip()
        if not stripped:
            continue
        if stripped.startswith("["):
            in_section = stripped == f"[{_SECTION}]"
            pending_key = None
            continue
        if not in_section:
            continue
        if pending_key is not None:
            pending_items.extend(_STR_RE.findall(stripped))
            if "]" in stripped:
                table[pending_key] = list(pending_items)
                pending_key = None
            continue
        m = _KEY_RE.match(stripped)
        if m is None:
            continue
        key, rhs = m.group(1), m.group(2)
        if rhs.startswith("["):
            items = _STR_RE.findall(rhs)
            if "]" in rhs:
                table[key] = items
            else:
                pending_key, pending_items = key, items
        else:
            strings = _STR_RE.findall(rhs)
            if strings:
                table[key] = strings[0]
    return table


def _read_table(pyproject: Path) -> dict:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # Python 3.10
        return _parse_minimal_toml(text)
    try:
        doc = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"{pyproject}: invalid TOML: {exc}") from exc
    table = doc
    for part in _SECTION.split("."):
        table = table.get(part)
        if not isinstance(table, dict):
            return {}
    return table


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | str | None = None,
                pyproject: Path | str | None = None) -> AnalysisConfig:
    """Load the linter config for a project.

    ``pyproject`` names the file directly; otherwise the nearest
    ``pyproject.toml`` at or above ``start`` (default: cwd) is used.
    Returns the defaults when no file or no table is found.
    """
    if pyproject is not None:
        path = Path(pyproject)
        if not path.is_file():
            raise ConfigurationError(f"config file not found: {path}")
    else:
        path = find_pyproject(Path(start) if start is not None
                              else Path.cwd())
        if path is None:
            return AnalysisConfig()
    return config_from_mapping(_read_table(path))
