"""Invariant linter for the repro codebase.

A stdlib-``ast`` static-analysis subsystem that mechanizes the
load-bearing invariants this repo has historically broken and then
fixed by hand:

- **RPR001 lock-discipline** — ``*_locked`` methods must be called with
  the owning lock held (lexical ``with self._lock:``) and must never
  re-acquire it (the scheduler's convention since PR 3).
- **RPR002 complex-inplace** — no in-place multiplies (or elidable
  scalar-times-temporary multiplies) on complex ndarrays in kernel
  modules; numpy's in-place complex multiply can round a final ulp
  differently from the out-of-place one (the PR 5 ``freespace.py``
  parity bug).
- **RPR003 hash-purity** — every dataclass field on ``*Options`` /
  ``*Spec`` classes is either consumed by ``to_spec`` (and therefore
  content-hashed) or listed in the class's documented ``HASH_EXCLUDED``
  set (the ``check_finite`` cache-split bug PR 5 fixed).
- **RPR004 wire-compat** — wire dataclasses and decoders stay decodable
  by every version in ``COMPAT_WIRE_VERSIONS``: fields newer than a
  message's introduction version need defaults and ``.get``-style
  decoding (guards the v1–v3 peers).
- **RPR005 warn-stacklevel** — ``warnings.warn`` calls must pass an
  explicit ``stacklevel`` (the attribution bug PR 4 fixed in both
  solvers).
- **RPR006 monotonic-duration** — durations must come from
  ``time.monotonic()`` / ``time.perf_counter()`` pairs, never from
  differences of ``time.time()`` wall-clock reads.
- **RPR007 broad-except** — ``except Exception`` needs an explicit
  justification comment (``# noqa: BLE001 — reason``).

Run it as ``python -m repro.analysis [paths]`` or
``repro-experiments lint``; configure via ``[tool.repro.analysis]`` in
``pyproject.toml``; suppress a finding in place with
``# repro: ignore[RPRnnn] reason``.
"""

from __future__ import annotations

from .config import AnalysisConfig, load_config
from .core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    register_rule,
)
from . import rules as _rules  # noqa: F401 — registers the shipped rules

__all__ = [
    "AnalysisConfig",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "load_config",
    "register_rule",
]
