"""The documented wire-compatibility contract (consumed by RPR004).

One entry per wire document tag (the ``$type`` values registered in
``repro.service.wire._DECODERS``), recording

- ``since`` — the wire version that introduced the tag (provenance;
  not enforced),
- ``required`` — fields every compatible peer includes for this tag.
  Decoders may hard-read these (``doc["f"]`` / ``_expect``), and the
  matching dataclass fields may omit defaults.
- ``optional`` — fields added after the tag's introduction (or that
  old peers may omit). Decoders must ``.get`` them and dataclass
  fields must carry defaults, or a v1–v3 document stops decoding.

Growing the format is a two-step edit the analyzer enforces: add the
field with a default and a ``.get``-side decode, then record it here
under ``optional`` (promoting it to ``required`` only when
``COMPAT_WIRE_VERSIONS`` drops every version that lacks it). A
decoder for a tag missing from this table — or a table entry whose
tag has lost its decoder — is itself a finding, so the contract and
the code cannot drift apart silently.
"""

from __future__ import annotations

#: tag -> {"since": int, "required": tuple, "optional": tuple}
WIRE_BASELINE: dict[str, dict] = {
    "ndarray": {
        "since": 1,
        "required": ("dtype", "shape", "data"),
        "optional": (),
    },
    "correlation": {
        "since": 1,
        "required": ("class", "params"),
        "optional": (),
    },
    "EstimatorSpec": {
        "since": 1,
        "required": ("kind", "order", "n_samples", "seed"),
        # batch_size is perf-only (outside the content hash) and absent
        # from pre-batching documents.
        "optional": ("batch_size",),
    },
    "TwoMediumSystem": {
        "since": 1,
        "required": ("dielectric", "conductor"),
        "optional": (),
    },
    # Options/config documents decode via _strip -> constructor, so no
    # field is hard-read; constructor defaults absorb old documents.
    "SWMOptions": {"since": 1, "required": (), "optional": ()},
    "SWM2DOptions": {"since": 1, "required": (), "optional": ()},
    "StochasticLossConfig": {"since": 1, "required": (), "optional": ()},
    "StochasticScenario": {
        "since": 1,
        "required": ("name", "correlation", "system"),
        "optional": ("config", "options"),
    },
    "DeterministicScenario": {
        "since": 1,
        "required": ("name", "heights_m", "period_m", "system"),
        "optional": ("options",),
    },
    "ProfileScenario": {
        "since": 1,
        "required": ("name", "correlation", "period_um", "n", "system"),
        "optional": ("normalize", "options"),
    },
    "SweepSpec": {
        "since": 1,
        "required": ("scenarios", "frequencies_hz", "estimators"),
        "optional": ("estimator_map", "tags"),
    },
    "Job": {
        "since": 1,
        "required": ("scenario", "frequency_hz", "estimator", "index"),
        "optional": (),
    },
    "PointResult": {
        "since": 1,
        "required": ("scenario", "frequency_hz", "estimator", "key",
                     "mean", "std", "values", "n_evals", "seed",
                     "wall_time_s", "cache_hit"),
        # pid landed with process pools, spans with wire v2 telemetry.
        "optional": ("pid", "spans"),
    },
    "SweepResult": {
        "since": 1,
        "required": ("frequencies_hz", "points"),
        "optional": ("tags", "executor", "wall_time_s"),
    },
    "WorkerClaim": {
        "since": 3,
        "required": ("slot", "token", "key", "lease_s", "job"),
        "optional": (),
    },
    "WorkerResult": {
        "since": 3,
        "required": ("slot", "token", "worker", "key"),
        "optional": ("payload", "error", "meta"),
    },
    "WorkerTelemetry": {
        "since": 4,
        "required": ("worker", "time_unix"),
        "optional": ("seq", "metrics", "logs", "stats"),
    },
}
