"""Structured sweep results with per-point provenance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PointResult:
    """One executed (or cache-served) sweep point.

    ``values`` holds the raw evaluations behind the summary statistics:
    SSCM sparse-grid node values, Monte-Carlo samples, or the single
    deterministic enhancement. Provenance fields record how the number
    was obtained, not just what it is.
    """

    scenario: str
    frequency_hz: float
    estimator: str
    key: str
    mean: float
    std: float
    values: np.ndarray
    n_evals: int
    seed: int | None
    wall_time_s: float
    cache_hit: bool
    pid: int | None = None
    #: Telemetry span dicts recorded while this point executed (None
    #: unless :mod:`repro.telemetry` was enabled in the worker).
    spans: tuple | list | None = None


@dataclass(frozen=True)
class SweepResult:
    """All points of one executed :class:`~repro.engine.spec.SweepSpec`.

    Points are stored in the spec's job order (scenario-major); the
    accessors below reshape them into the frequency curves the
    experiments plot.
    """

    frequencies_hz: tuple[float, ...]
    points: tuple[PointResult, ...]
    tags: Mapping[str, Any] = field(default_factory=dict)
    executor: str = "serial"
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cache_hit)

    @property
    def cache_misses(self) -> int:
        return self.n_points - self.cache_hits

    @property
    def n_evals(self) -> int:
        """Total SWM solves performed (cache hits contribute zero)."""
        return sum(p.n_evals for p in self.points if not p.cache_hit)

    @property
    def scenario_names(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.scenario not in seen:
                seen.append(p.scenario)
        return seen

    # ------------------------------------------------------------------

    def _select(self, scenario: str | None,
                estimator: str | None) -> list[PointResult]:
        pts = list(self.points)
        if scenario is not None:
            pts = [p for p in pts if p.scenario == scenario]
        elif len(self.scenario_names) > 1:
            raise ConfigurationError(
                f"sweep has scenarios {self.scenario_names}; "
                "pass scenario=..."
            )
        labels = {p.estimator for p in pts}
        if estimator is not None:
            pts = [p for p in pts if p.estimator == estimator]
        elif len(labels) > 1:
            raise ConfigurationError(
                f"sweep has estimators {sorted(labels)}; pass estimator=..."
            )
        if not pts:
            raise ConfigurationError(
                f"no points match scenario={scenario!r} "
                f"estimator={estimator!r}"
            )
        return pts

    def point(self, scenario: str | None = None,
              frequency_hz: float | None = None,
              estimator: str | None = None) -> PointResult:
        """The unique point matching the selectors."""
        pts = self._select(scenario, estimator)
        if frequency_hz is not None:
            pts = [p for p in pts if p.frequency_hz == float(frequency_hz)]
        if len(pts) != 1:
            raise ConfigurationError(
                f"selector matched {len(pts)} points, expected exactly 1"
            )
        return pts[0]

    def curve(self, scenario: str | None = None, statistic: str = "mean",
              estimator: str | None = None) -> np.ndarray:
        """A per-frequency curve (``statistic`` in ``mean``/``std``)
        aligned with :attr:`frequencies_hz`."""
        if statistic not in ("mean", "std"):
            raise ConfigurationError(
                f"statistic must be 'mean' or 'std', got {statistic!r}"
            )
        pts = self._select(scenario, estimator)
        by_freq = {p.frequency_hz: getattr(p, statistic) for p in pts}
        try:
            return np.array([by_freq[f] for f in self.frequencies_hz],
                            dtype=np.float64)
        except KeyError as exc:
            raise ConfigurationError(
                f"missing frequency {exc.args[0]} in sweep points"
            ) from exc

    def mean_curve(self, scenario: str | None = None,
                   estimator: str | None = None) -> np.ndarray:
        return self.curve(scenario, "mean", estimator)

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One-line execution summary (for runner/bench logs)."""
        return (f"{self.n_points} points "
                f"({self.cache_hits} cached, {self.cache_misses} computed, "
                f"{self.n_evals} solves) via {self.executor} "
                f"in {self.wall_time_s:.2f} s")
