"""Parallel sweep-execution engine with content-addressed result caching.

The paper's methodology is "many deterministic SWM solves per statistics
point"; this subsystem is the architecture that scales it. A sweep is
declared once (:class:`SweepSpec`: scenarios x frequencies x
estimators), executed by any :class:`Executor`, and every point is keyed
by a content hash of its physics inputs so results replay for free from
the two-tier :class:`ResultCache`.

Quickstart::

    from repro.constants import GHZ, UM
    from repro.core import StochasticLossConfig
    from repro.engine import (EstimatorSpec, ParallelExecutor, ResultCache,
                              StochasticScenario, SweepSpec, run_sweep)
    from repro.surfaces import GaussianCorrelation

    spec = SweepSpec(
        scenarios=[StochasticScenario(
            "eta1um", GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=10, max_modes=6))],
        frequencies_hz=[2 * GHZ, 5 * GHZ],
        estimators=EstimatorSpec(kind="sscm", order=1))
    result = run_sweep(spec, executor=ParallelExecutor(n_jobs=4),
                       cache=ResultCache(disk_dir="./sweep-cache"))
    result.mean_curve("eta1um")

The high-level pipeline API (:mod:`repro.core`) routes through this
engine, so ``StochasticLossModel.sscm``/``.mean_enhancement`` and
friends accept ``executor=``/``cache=`` directly, and
:func:`engine_session` scopes a default policy for code (like the
experiment classes behind :mod:`repro.api`) that never mentions the
engine.

:func:`run_batch` generalizes :func:`run_sweep` to several named specs
executed as one merged job stream (cross-sweep deduplication by content
hash, per-sweep progress attribution) — the mechanism behind
``repro.api.run_many``. Heterogeneous figures use ``SweepSpec``'s
``estimator_map`` (per-scenario estimators) and
:class:`ProfileScenario` (2D y-uniform processes) alongside the 3D
stochastic and deterministic scenarios.
"""

from .api import (
    cache_split,
    default_cache,
    engine_session,
    run_batch,
    run_sweep,
)
from .artifacts import ArtifactEntry, ArtifactStore, LocalDirStore, MemoryStore
from .cache import CacheStats, ResultCache
from .executors import Executor, ParallelExecutor, SerialExecutor
from .results import PointResult, SweepResult
from .runtime import clear_memo, execute_job, seed_model
from .spec import (
    ENGINE_VERSION,
    DeterministicScenario,
    EstimatorSpec,
    Job,
    ProfileScenario,
    StochasticScenario,
    SweepSpec,
    content_hash,
    correlation_spec,
)

__all__ = [
    "ENGINE_VERSION",
    "ArtifactEntry",
    "ArtifactStore",
    "CacheStats",
    "LocalDirStore",
    "MemoryStore",
    "DeterministicScenario",
    "EstimatorSpec",
    "Executor",
    "Job",
    "ParallelExecutor",
    "PointResult",
    "ProfileScenario",
    "ResultCache",
    "SerialExecutor",
    "StochasticScenario",
    "SweepResult",
    "SweepSpec",
    "cache_split",
    "clear_memo",
    "content_hash",
    "correlation_spec",
    "default_cache",
    "engine_session",
    "execute_job",
    "run_batch",
    "run_sweep",
    "seed_model",
]
