"""Plan-level job cost model (resolved from the spec alone).

:func:`estimate_job_cost` is the relative dense-LU work figure the
whole stack shares: the scheduler orders dispatch rounds and worker
claims by it, grouped frequency-stack execution attributes measured
wall time back to individual jobs by it, and the
:class:`~repro.telemetry.CostCalibrator` regresses per-kind wall clock
against it. The per-kind cost *forms* live in one ``job_kind``-keyed
table — :data:`repro.telemetry.calibration.COST_MODELS` — so a new
scenario kind cannot get a cost model in the scheduler but not the
calibrator (or vice versa); an unregistered kind raises instead of
silently sorting as free.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..telemetry.calibration import COST_MODELS
from .spec import (
    DeterministicScenario,
    EstimatorSpec,
    Job,
    ProfileScenario,
    StochasticScenario,
)


def job_kind(job: Job) -> str:
    """Coarse scenario kind: the key into :data:`COST_MODELS` and the
    bucket the :class:`~repro.telemetry.CostCalibrator` fits per."""
    scenario = job.scenario
    if isinstance(scenario, DeterministicScenario):
        return "deterministic"
    if isinstance(scenario, ProfileScenario):
        return "profile"
    return "stochastic"


def _unknowns(job: Job) -> int:
    """Dense-system size N of one SWM solve for this job's scenario."""
    scenario = job.scenario
    if isinstance(scenario, DeterministicScenario):
        return int(scenario.heights_m.size)
    if isinstance(scenario, ProfileScenario):
        return int(scenario.n)
    if isinstance(scenario, StochasticScenario):
        _, n = scenario._resolved_config().resolve(scenario.correlation)
        return int(n) * int(n)
    return 1


def _evals(job: Job) -> int:
    """Estimated solver evaluations the job's estimator performs.

    Monte-Carlo is exact (``n_samples``); SSCM uses the level-``order``
    sparse-grid growth ``1 + 2 d order`` in the stochastic dimension
    ``d`` (bounded by ``max_modes`` for 3D processes, ``n`` for 2D
    profiles) — a deliberate over-estimate at higher orders, which only
    sharpens the longest-first ordering.
    """
    est: EstimatorSpec | None = job.estimator
    if est is None:
        return 1
    if est.kind == "montecarlo":
        return max(int(est.n_samples), 1)
    scenario = job.scenario
    if isinstance(scenario, ProfileScenario):
        dim = int(scenario.n)
    elif isinstance(scenario, StochasticScenario):
        dim = int(scenario._resolved_config().max_modes)
    else:
        dim = 1
    return 1 + 2 * dim * int(est.order)


def estimate_job_cost(job: Job) -> float:
    """Relative cost of a job in dense-LU work units.

    Resolved from the spec alone — no model is built. The absolute
    scale per kind is meaningless; the scheduler sorts within a round
    by it, grouped execution splits measured wall time by it, and the
    calibrator learns each kind's seconds-per-unit slope.
    """
    kind = job_kind(job)
    try:
        model = COST_MODELS[kind]
    except KeyError:
        raise ConfigurationError(
            f"no cost model registered for job kind {kind!r}; add it to "
            "repro.telemetry.calibration.COST_MODELS"
        ) from None
    return model(_evals(job), _unknowns(job))
