"""Declarative job model for the sweep-execution engine.

A sweep is the paper's fundamental unit of work: "many deterministic SWM
solves per statistics point", repeated over a cartesian product of
scenarios (surface processes or explicit surfaces) x frequencies x
estimator settings. This module describes that product *declaratively*
so that

- any executor (serial, process pool, future distributed backends) can
  run the same :class:`SweepSpec` and produce identical results;
- every :class:`Job` carries a **stable content hash** derived from the
  physics inputs (correlation parameters, pipeline configuration,
  material system, :class:`~repro.swm.solver.SWMOptions`, resolved grid
  geometry, frequency, estimator), which keys the result cache.

Hashes are computed over a canonical JSON form: floats are rendered via
``float.hex()`` (exact round trip, no repr ambiguity), dict keys are
sorted, and arrays are folded in as ``(shape, dtype, sha256(bytes))``.
Two specs hash equal iff they describe the same computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable, Mapping, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..materials import PAPER_SYSTEM, TwoMediumSystem
from ..surfaces.correlation import CorrelationFunction
from ..swm.solver import SWMOptions
from ..swm.solver2d import SWM2DOptions

#: Bump to invalidate on-disk caches when job semantics change.
ENGINE_VERSION = 1


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------

def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable form with exact float encoding."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (float, np.floating)):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        digest = hashlib.sha256(a.tobytes()).hexdigest()
        return {"__ndarray__": [list(a.shape), a.dtype.str, digest]}
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    raise ConfigurationError(
        f"cannot canonicalize {type(obj).__name__} for content hashing"
    )


def content_hash(obj: Any) -> str:
    """Stable sha256 hex digest of a canonicalized spec object."""
    payload = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def correlation_spec(correlation: CorrelationFunction) -> dict:
    """Hashable description of a correlation function.

    All shipped CFs keep their defining parameters as public attributes
    (``sigma``, ``eta``, ``eta1`` ...), so the generic extraction covers
    user subclasses that follow the same convention. Every public
    attribute must be hashable (scalar, string, or array): silently
    skipping one would let two physically different correlations share
    cache entries. Derived caches belong in underscore attributes.
    """
    params = {}
    for k, v in vars(correlation).items():
        if k.startswith("_"):
            continue
        if isinstance(v, (bool, int, float, str,
                          np.floating, np.integer, np.ndarray)):
            params[k] = v
        else:
            raise ConfigurationError(
                f"correlation {type(correlation).__name__} has public "
                f"attribute {k!r} of unhashable type "
                f"{type(v).__name__}; prefix derived state with '_' or "
                "use a scalar/array parameter"
            )
    if not params:
        raise ConfigurationError(
            f"correlation {type(correlation).__name__} exposes no public "
            "parameters to hash"
        )
    return {"type": type(correlation).__name__, "params": params}


def _system_spec(system: TwoMediumSystem) -> dict:
    return {
        "dielectric": {"eps_r": system.dielectric.eps_r,
                       "mu_r": system.dielectric.mu_r},
        "conductor": {"resistivity": system.conductor.resistivity,
                      "mu_r": system.conductor.mu_r},
    }


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EstimatorSpec:
    """Which statistics estimator a stochastic job runs.

    ``kind`` is ``"sscm"`` (sparse-grid collocation, the paper's method;
    uses ``order``) or ``"montecarlo"`` (uses ``n_samples`` and
    ``seed``). Deterministic scenarios ignore the estimator entirely.

    ``batch_size`` stacks that many sample/node solves per dense
    factorization in the worker (``None`` = per-sample solves). It is a
    pure performance knob — batched solves are bit-identical to
    sequential ones, seed stream included — so it is **excluded** from
    :meth:`to_spec` and therefore from job content hashes: batched and
    per-sample runs share cache entries, and warmed caches stay valid.
    """

    #: Fields deliberately outside the content hash (perf-only knobs
    #: that cannot change payloads); the hash-purity check (RPR003)
    #: keeps this set honest against :meth:`to_spec`.
    HASH_EXCLUDED = frozenset({"batch_size"})

    kind: str = "sscm"
    order: int = 1
    n_samples: int = 0
    seed: int | None = 0
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sscm", "montecarlo"):
            raise ConfigurationError(
                f"estimator kind must be 'sscm' or 'montecarlo', "
                f"got {self.kind!r}"
            )
        if self.kind == "sscm" and self.order < 1:
            raise ConfigurationError(f"order must be >= 1, got {self.order}")
        if self.kind == "montecarlo" and self.n_samples < 2:
            raise ConfigurationError(
                f"montecarlo needs n_samples >= 2, got {self.n_samples}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )

    @property
    def cacheable(self) -> bool:
        """Unseeded Monte-Carlo is non-reproducible; never cache it."""
        return self.kind != "montecarlo" or self.seed is not None

    @property
    def label(self) -> str:
        if self.kind == "sscm":
            return f"sscm(order={self.order})"
        return f"montecarlo(n={self.n_samples}, seed={self.seed})"

    def to_spec(self) -> dict:
        if self.kind == "sscm":
            return {"kind": "sscm", "order": self.order}
        return {"kind": "montecarlo", "n_samples": self.n_samples,
                "seed": self.seed}


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StochasticScenario:
    """One random-surface process run through the stochastic pipeline.

    Mirrors the constructor of
    :class:`~repro.core.pipeline.StochasticLossModel`; the engine builds
    (and memoizes) the model lazily in whichever process executes the
    job. ``config = None`` uses the pipeline defaults.
    """

    name: str
    correlation: CorrelationFunction
    config: Any = None  # StochasticLossConfig | None (kept lazy)
    system: TwoMediumSystem = PAPER_SYSTEM
    options: SWMOptions | None = None

    kind = "stochastic"

    def _resolved_config(self):
        if self.config is not None:
            return self.config
        from ..core.pipeline import StochasticLossConfig
        return StochasticLossConfig()

    def to_spec(self) -> dict:
        from dataclasses import asdict
        cfg = self._resolved_config()
        period_m, n = cfg.resolve(self.correlation)
        options = self.options or SWMOptions()
        return {
            "kind": self.kind,
            "correlation": correlation_spec(self.correlation),
            "config": asdict(cfg),
            "system": _system_spec(self.system),
            "options": options.to_spec(),
            "grid": {"period_m": period_m, "points_per_side": n},
        }

    @cached_property
    def key(self) -> str:
        return content_hash(self.to_spec())


@dataclass(frozen=True)
class DeterministicScenario:
    """One explicit surface (e.g. the Fig. 5 half-spheroid boss).

    A job for this scenario is a single SWM solve; estimator settings do
    not apply.
    """

    name: str
    heights_m: np.ndarray
    period_m: float
    system: TwoMediumSystem = PAPER_SYSTEM
    options: SWMOptions | None = None

    kind = "deterministic"

    def __post_init__(self) -> None:
        heights = np.asarray(self.heights_m, dtype=np.float64)
        if heights.ndim != 2:
            raise ConfigurationError(
                f"heights must be a 2D map, got shape {heights.shape}"
            )
        if self.period_m <= 0.0:
            raise ConfigurationError(
                f"period must be positive, got {self.period_m}"
            )
        object.__setattr__(self, "heights_m", heights)

    def to_spec(self) -> dict:
        options = self.options or SWMOptions()
        return {
            "kind": self.kind,
            "heights_m": self.heights_m,
            "period_m": float(self.period_m),
            "system": _system_spec(self.system),
            "options": options.to_spec(),
            "grid": {"shape": list(self.heights_m.shape)},
        }

    @cached_property
    def key(self) -> str:
        return content_hash(self.to_spec())


@dataclass(frozen=True)
class ProfileScenario:
    """One y-uniform (2D) random-profile process (the Fig. 6 baseline).

    The 2D SWM treats the surface as a ridged profile ``f(x)`` extruded
    along y; samples are synthesized with the CF's 1D spectrum by
    :class:`~repro.surfaces.generation.ProfileGenerator` and solved with
    :class:`~repro.swm.solver2d.SWMSolver2D`. By that generator's
    convention, ``correlation`` and ``period_um`` are in **micrometers**
    (unlike :class:`StochasticScenario`, which is SI). The stochastic
    dimension equals ``n`` (one white-noise normal per grid point), so
    Monte-Carlo is the natural estimator; SSCM works but its sparse
    grids grow with ``n``.
    """

    name: str
    correlation: CorrelationFunction
    period_um: float
    n: int
    normalize: bool = True
    system: TwoMediumSystem = PAPER_SYSTEM
    options: SWM2DOptions | None = None

    kind = "profile"

    def __post_init__(self) -> None:
        if self.period_um <= 0.0:
            raise ConfigurationError(
                f"period must be positive, got {self.period_um}"
            )
        if self.n < 4:
            raise ConfigurationError(f"n must be >= 4, got {self.n}")

    def to_spec(self) -> dict:
        options = self.options or SWM2DOptions()
        return {
            "kind": self.kind,
            "correlation": correlation_spec(self.correlation),
            "period_um": float(self.period_um),
            "n": int(self.n),
            "normalize": bool(self.normalize),
            "system": _system_spec(self.system),
            # to_spec, not asdict: perf-only knobs (batch_size) must not
            # enter the content hash.
            "options": options.to_spec(),
        }

    @cached_property
    def key(self) -> str:
        return content_hash(self.to_spec())


Scenario = Union[StochasticScenario, DeterministicScenario, ProfileScenario]


# ----------------------------------------------------------------------
# Jobs and sweeps
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One point of the sweep: a scenario at one frequency under one
    estimator. The atomic unit of scheduling and caching."""

    scenario: Scenario
    frequency_hz: float
    estimator: EstimatorSpec | None
    index: int  # position in the sweep's job order (not hashed)

    def to_spec(self) -> dict:
        est = (self.estimator.to_spec() if self.estimator is not None
               else {"kind": "solve"})
        return {
            "engine_version": ENGINE_VERSION,
            "scenario": self.scenario.to_spec(),
            "frequency_hz": float(self.frequency_hz),
            "estimator": est,
        }

    @cached_property
    def key(self) -> str:
        """Content hash keying the result cache."""
        return content_hash(self.to_spec())

    @property
    def cacheable(self) -> bool:
        return self.estimator is None or self.estimator.cacheable

    @property
    def estimator_label(self) -> str:
        return self.estimator.label if self.estimator is not None else "solve"

    def to_wire(self) -> dict:
        """Transport encoding (see :mod:`repro.service.wire`).

        Unlike :meth:`to_spec` (a one-way canonical form for hashing),
        the wire form reconstructs the full object — and round-trips
        the content hash bit-for-bit.
        """
        from ..service.wire import to_wire
        return to_wire(self)

    @staticmethod
    def from_wire(doc: Mapping) -> "Job":
        from ..service.wire import from_wire
        obj = from_wire(doc)
        if not isinstance(obj, Job):
            raise ConfigurationError(
                f"wire document decodes to {type(obj).__name__}, not Job"
            )
        return obj


@dataclass(frozen=True)
class SweepSpec:
    """Cartesian product of scenarios x frequencies x estimators.

    ``estimator_map`` overrides the shared estimator tuple per scenario
    name, which is how one spec carries a heterogeneous figure (e.g.
    Fig. 6: SSCM on the 3D scenarios, Monte-Carlo on the 2D profile
    baselines) as a single job stream. Scenarios not named in the map
    use ``estimators``.

    ``tags`` is free-form provenance (e.g. ``{"scale": "quick"}``)
    recorded in results and cache metadata but **excluded** from content
    hashes, so annotating a sweep never invalidates warm caches.
    """

    scenarios: tuple[Scenario, ...]
    frequencies_hz: tuple[float, ...]
    estimators: tuple[EstimatorSpec, ...] = (EstimatorSpec(),)
    estimator_map: Mapping[str, tuple[EstimatorSpec, ...]] = field(
        default_factory=dict)
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __init__(self, scenarios: Scenario | Sequence[Scenario],
                 frequencies_hz: float | Iterable[float],
                 estimators: EstimatorSpec | Sequence[EstimatorSpec] = (
                     EstimatorSpec(),),
                 estimator_map: Mapping[
                     str, EstimatorSpec | Sequence[EstimatorSpec]
                 ] | None = None,
                 tags: Mapping[str, Any] | None = None) -> None:
        if isinstance(scenarios, (StochasticScenario, DeterministicScenario,
                                  ProfileScenario)):
            scenarios = (scenarios,)
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ConfigurationError("sweep needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"scenario names must be unique, got {names}"
            )
        freqs = tuple(float(f) for f in
                      np.atleast_1d(np.asarray(frequencies_hz,
                                               dtype=np.float64)))
        if not freqs:
            raise ConfigurationError("sweep needs at least one frequency")
        if any(f <= 0.0 for f in freqs):
            raise ConfigurationError("frequencies must be positive")
        if isinstance(estimators, EstimatorSpec):
            estimators = (estimators,)
        estimators = tuple(estimators)
        if not estimators:
            raise ConfigurationError("sweep needs at least one estimator")
        resolved_map: dict[str, tuple[EstimatorSpec, ...]] = {}
        for scen_name, ests in dict(estimator_map or {}).items():
            if scen_name not in names:
                raise ConfigurationError(
                    f"estimator_map names unknown scenario {scen_name!r} "
                    f"(scenarios: {names})"
                )
            if isinstance(ests, EstimatorSpec):
                ests = (ests,)
            ests = tuple(ests)
            if not ests:
                raise ConfigurationError(
                    f"estimator_map entry for {scen_name!r} is empty"
                )
            resolved_map[scen_name] = ests
        object.__setattr__(self, "scenarios", scenarios)
        object.__setattr__(self, "frequencies_hz", freqs)
        object.__setattr__(self, "estimators", estimators)
        object.__setattr__(self, "estimator_map", resolved_map)
        object.__setattr__(self, "tags", dict(tags or {}))

    def estimators_for(self, scenario: Scenario) -> tuple[EstimatorSpec, ...]:
        """The estimator tuple a scenario actually runs under."""
        return self.estimator_map.get(scenario.name, self.estimators)

    def jobs(self) -> list[Job]:
        """Materialize the cartesian product, scenario-major."""
        out: list[Job] = []
        for scenario in self.scenarios:
            if scenario.kind == "deterministic":
                for f in self.frequencies_hz:
                    out.append(Job(scenario, f, None, len(out)))
            else:
                for est in self.estimators_for(scenario):
                    for f in self.frequencies_hz:
                        out.append(Job(scenario, f, est, len(out)))
        return out

    @property
    def n_jobs(self) -> int:
        return len(self.jobs())

    @cached_property
    def key(self) -> str:
        """Content hash of the whole sweep (tags excluded)."""
        payload = {
            "engine_version": ENGINE_VERSION,
            "scenarios": [s.to_spec() for s in self.scenarios],
            "frequencies_hz": list(self.frequencies_hz),
            "estimators": [e.to_spec() for e in self.estimators],
        }
        if self.estimator_map:
            # Included only when present so pre-existing spec hashes
            # (and any cache manifests keyed by them) stay valid.
            payload["estimator_map"] = {
                name: [e.to_spec() for e in ests]
                for name, ests in self.estimator_map.items()
            }
        return content_hash(payload)

    def to_wire(self) -> dict:
        """Transport encoding of the whole sweep (specs cross process
        and machine boundaries through :mod:`repro.service.wire`; the
        round trip preserves :attr:`key` exactly)."""
        from ..service.wire import to_wire
        return to_wire(self)

    @staticmethod
    def from_wire(doc: Mapping) -> "SweepSpec":
        from ..service.wire import from_wire
        obj = from_wire(doc)
        if not isinstance(obj, SweepSpec):
            raise ConfigurationError(
                f"wire document decodes to {type(obj).__name__}, "
                "not SweepSpec"
            )
        return obj
