"""`run_sweep` — the single entry point of the execution engine.

Execution policy (executor + cache) is resolved per call:

1. explicit ``executor=`` / ``cache=`` arguments win;
2. otherwise the active :func:`engine_session` defaults apply (this is
   how ``runner.py --jobs N --cache-dir P`` reaches every sweep inside
   the experiments without threading arguments through them);
3. otherwise: serial execution against a process-global in-memory LRU,
   so repeated sweeps in one process are near-free even with no setup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .cache import ResultCache
from .executors import Executor, ParallelExecutor, ProgressFn, SerialExecutor
from .results import PointResult, SweepResult
from .runtime import execute_job
from .spec import SweepSpec

#: Fallback cache when neither an argument nor a session provides one.
_GLOBAL_CACHE = ResultCache(max_memory_entries=256)


@dataclass
class _SessionDefaults:
    executor: Executor | None = None
    cache: ResultCache | None = None


_session = _SessionDefaults()


def default_cache() -> ResultCache:
    """The process-global in-memory cache (tier 1 only)."""
    return _GLOBAL_CACHE


@contextmanager
def engine_session(n_jobs: int | None = None,
                   cache_dir: str | None = None,
                   executor: Executor | None = None,
                   cache: ResultCache | None = None) -> Iterator[None]:
    """Scope default execution policy for every ``run_sweep`` inside.

    ``n_jobs > 1`` selects a :class:`ParallelExecutor`; ``cache_dir``
    adds a persistent tier. Explicit ``executor``/``cache`` objects
    override the convenience knobs. Nested sessions inherit whatever
    the inner session leaves unspecified (setting only ``n_jobs``
    inside a ``cache_dir`` session keeps the outer cache).
    """
    global _session
    if executor is None and n_jobs is not None:
        executor = (ParallelExecutor(n_jobs) if n_jobs > 1
                    else SerialExecutor())
    if cache is None and cache_dir is not None:
        cache = ResultCache(disk_dir=cache_dir)
    previous = _session
    if executor is None:
        executor = previous.executor
    if cache is None:
        cache = previous.cache
    _session = _SessionDefaults(executor=executor, cache=cache)
    try:
        yield
    finally:
        _session = previous


def _resolve(executor: Executor | None,
             cache: ResultCache | None) -> tuple[Executor, ResultCache]:
    if executor is None:
        executor = (_session.executor if _session.executor is not None
                    else SerialExecutor())
    if cache is None:
        # NB: an *empty* ResultCache is falsy (it has __len__), so the
        # fallbacks must test identity, not truthiness.
        cache = _session.cache if _session.cache is not None \
            else _GLOBAL_CACHE
    return executor, cache


def run_sweep(spec: SweepSpec, executor: Executor | None = None,
              cache: ResultCache | None = None,
              progress: ProgressFn | None = None) -> SweepResult:
    """Execute (or replay from cache) every job of a sweep.

    Cached points are served without any SWM solve; the remaining jobs
    go to the executor as one batch. ``progress(done, total)`` counts
    sweep points, cache hits included.
    """
    executor, cache = _resolve(executor, cache)
    start = time.perf_counter()
    jobs = spec.jobs()
    total = len(jobs)

    payloads: list[dict | None] = [None] * total
    hit = [False] * total
    pending = []
    for i, job in enumerate(jobs):
        if job.cacheable:
            cached = cache.get(job.key)
            if cached is not None:
                payloads[i] = cached
                hit[i] = True
                continue
        pending.append((i, job))

    done_cached = total - len(pending)
    if progress is not None and done_cached:
        progress(done_cached, total)

    if pending:
        def _progress(done: int, _n_pending: int) -> None:
            if progress is not None:
                progress(done_cached + done, total)

        def _commit(pending_idx: int, payload: dict) -> None:
            # Committed per result as it arrives, so a sweep that dies
            # midway (worker error, Ctrl-C) keeps everything finished.
            i, job = pending[pending_idx]
            if payloads[i] is not None:
                return
            payloads[i] = payload
            if job.cacheable:
                cache.put(job.key, payload, metadata={
                    "scenario": job.scenario.name,
                    "frequency_hz": float(job.frequency_hz),
                    "estimator": job.estimator_label,
                    "tags": dict(spec.tags),
                })

        computed = executor.run(execute_job, [job for _, job in pending],
                                progress=_progress, on_result=_commit)
        # Fallback for custom executors that ignore on_result.
        for pending_idx, payload in enumerate(computed):
            _commit(pending_idx, payload)

    points = []
    for i, job in enumerate(jobs):
        payload = payloads[i]
        points.append(PointResult(
            scenario=job.scenario.name,
            frequency_hz=float(job.frequency_hz),
            estimator=job.estimator_label,
            key=job.key,
            mean=payload["mean"],
            std=payload["std"],
            values=payload["values"],
            n_evals=payload["n_evals"],
            seed=payload["seed"],
            wall_time_s=payload["wall_time_s"],
            cache_hit=hit[i],
            pid=payload.get("pid"),
        ))
    return SweepResult(
        frequencies_hz=spec.frequencies_hz,
        points=tuple(points),
        tags=dict(spec.tags),
        executor=executor.name,
        wall_time_s=time.perf_counter() - start,
    )
