"""`run_sweep` / `run_batch` — the entry points of the execution engine.

Execution policy (executor + cache) is resolved per call:

1. explicit ``executor=`` / ``cache=`` arguments win;
2. otherwise the active :func:`engine_session` defaults apply (this is
   how ``runner.py --jobs N --cache-dir P`` reaches every sweep inside
   the experiments without threading arguments through them);
3. otherwise: serial execution against a process-global in-memory LRU,
   so repeated sweeps in one process are near-free even with no setup.

:func:`run_batch` executes several named sweeps as **one merged job
stream**: all pending jobs go to the executor as a single batch (so
parallelism spans experiments, not just one figure's points), cacheable
jobs that appear in more than one sweep are computed once, and the
optional ``batch_progress`` callback attributes completed points back to
the sweep that owns them.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from .. import telemetry
from ..errors import ConfigurationError
from .cache import ResultCache
from .executors import Executor, ParallelExecutor, ProgressFn, SerialExecutor
from .results import PointResult, SweepResult
from .runtime import execute_job
from .spec import Job, SweepSpec

#: ``batch_progress(name, done, total)`` — per-sweep point attribution.
BatchProgressFn = Callable[[str, int, int], None]

#: Fallback cache when neither an argument nor a session provides one.
_GLOBAL_CACHE = ResultCache(max_memory_entries=256)


@dataclass(frozen=True)
class _SessionDefaults:
    executor: Executor | None = None
    cache: ResultCache | None = None


# Context-local, not module-global: concurrent callers (the threaded
# HTTP service, notebook background tasks) each get their own session
# stack, so one thread entering engine_session can never redirect
# another thread's sweeps to its executor/cache. Threads and asyncio
# tasks start from an empty Context, i.e. from the no-session default.
_SESSION: ContextVar[_SessionDefaults] = ContextVar(
    "repro_engine_session", default=_SessionDefaults())


def default_cache() -> ResultCache:
    """The process-global in-memory cache (tier 1 only)."""
    return _GLOBAL_CACHE


@contextmanager
def engine_session(n_jobs: int | None = None,
                   cache_dir: str | None = None,
                   executor: Executor | None = None,
                   cache: ResultCache | None = None) -> Iterator[None]:
    """Scope default execution policy for every ``run_sweep`` inside.

    ``n_jobs > 1`` selects a :class:`ParallelExecutor`; ``cache_dir``
    adds a persistent tier. Explicit ``executor``/``cache`` objects
    override the convenience knobs. Nested sessions inherit whatever
    the inner session leaves unspecified (setting only ``n_jobs``
    inside a ``cache_dir`` session keeps the outer cache).
    """
    if executor is None and n_jobs is not None:
        executor = (ParallelExecutor(n_jobs) if n_jobs > 1
                    else SerialExecutor())
    if cache is None and cache_dir is not None:
        cache = ResultCache(disk_dir=cache_dir)
    previous = _SESSION.get()
    if executor is None:
        executor = previous.executor
    if cache is None:
        cache = previous.cache
    token = _SESSION.set(_SessionDefaults(executor=executor, cache=cache))
    try:
        yield
    finally:
        _SESSION.reset(token)


def _resolve(executor: Executor | None,
             cache: ResultCache | None) -> tuple[Executor, ResultCache]:
    session = _SESSION.get()
    if executor is None:
        executor = (session.executor if session.executor is not None
                    else SerialExecutor())
    if cache is None:
        # NB: an *empty* ResultCache is falsy (it has __len__), so the
        # fallbacks must test identity, not truthiness.
        cache = session.cache if session.cache is not None \
            else _GLOBAL_CACHE
    return executor, cache


def cache_split(jobs: SweepSpec | Sequence[Job],
                cache: ResultCache | None = None
                ) -> tuple[dict[int, dict], list[Job]]:
    """Split a job stream into cache hits and pending computations.

    This is the scheduler core of :func:`run_sweep`/:func:`run_batch`,
    exposed for services that answer hits immediately and enqueue the
    rest (the async sweep service of :mod:`repro.service` is built on
    it). ``jobs`` is a :class:`SweepSpec` (its materialized job list is
    used) or an explicit job sequence; ``cache`` defaults to the active
    session's cache, like :func:`run_sweep`.

    Returns ``(hits, pending)``: ``hits`` maps job index -> cached
    payload dict, ``pending`` lists the jobs that still need an
    executor (non-cacheable jobs are always pending). Looking up a hit
    counts in the cache's stats, exactly as running the sweep would.
    """
    if isinstance(jobs, SweepSpec):
        jobs = jobs.jobs()
    _, cache = _resolve(None, cache)
    hits: dict[int, dict] = {}
    pending: list[Job] = []
    for i, job in enumerate(jobs):
        payload = cache.get(job.key) if job.cacheable else None
        if payload is not None:
            hits[i] = payload
        else:
            pending.append(job)
    return hits, pending


def run_batch(specs: Mapping[str, SweepSpec],
              executor: Executor | None = None,
              cache: ResultCache | None = None,
              progress: ProgressFn | None = None,
              batch_progress: BatchProgressFn | None = None
              ) -> dict[str, SweepResult]:
    """Execute several named sweeps as one merged, deduplicated batch.

    Cached points are served without any SWM solve; every remaining job
    — across all sweeps — goes to the executor as one batch, and each
    point commits to the cache the moment it finishes. A cacheable job
    appearing in more than one sweep (identical content hash) is
    executed once and fanned out to every owner; its cache entry's
    human-readable metadata records the *first* owner's tags (payloads
    are identical by construction, and tags never enter content
    hashes).

    ``progress(done, total)`` counts points over the whole batch (cache
    hits included); ``batch_progress(name, done, total)`` additionally
    attributes each completed point to the sweep that owns it. Every
    returned :class:`SweepResult` reports the batch's shared wall time.
    """
    executor, cache = _resolve(executor, cache)
    start = time.perf_counter()

    jobs_by_name = {name: spec.jobs() for name, spec in specs.items()}
    totals = {name: len(jobs) for name, jobs in jobs_by_name.items()}
    total = sum(totals.values())
    payloads = {name: [None] * n for name, n in totals.items()}
    hits = {name: [False] * n for name, n in totals.items()}
    done_in = dict.fromkeys(specs, 0)

    # One execution slot per distinct pending computation; a slot's
    # targets are every (sweep, point) its payload satisfies.
    slots: list[tuple] = []          # (job, [(name, index), ...])
    slot_by_key: dict[str, int] = {}  # cacheable job hash -> slot
    for name, jobs in jobs_by_name.items():
        for i, job in enumerate(jobs):
            if job.cacheable:
                cached = cache.get(job.key)
                if cached is not None:
                    payloads[name][i] = cached
                    hits[name][i] = True
                    done_in[name] += 1
                    continue
                slot_idx = slot_by_key.get(job.key)
                if slot_idx is not None:
                    slots[slot_idx][1].append((name, i))
                    continue
                slot_by_key[job.key] = len(slots)
            slots.append((job, [(name, i)]))

    done_points = sum(done_in.values())
    if done_points:
        if progress is not None:
            progress(done_points, total)
        if batch_progress is not None:
            for name, done in done_in.items():
                if done:
                    batch_progress(name, done, totals[name])

    if slots:
        committed = [False] * len(slots)
        n_committed = 0
        last_reported = done_points

        def _report(points_done: int) -> None:
            # Progress must stay monotone even when the executor's own
            # slot-level reports interleave with per-commit point counts.
            nonlocal last_reported
            if progress is not None and points_done > last_reported:
                last_reported = points_done
                progress(points_done, total)

        def _commit(slot_idx: int, payload: dict) -> None:
            # Committed per result as it arrives, so a batch that dies
            # midway (worker error, Ctrl-C) keeps everything finished.
            nonlocal done_points, n_committed
            if committed[slot_idx]:
                return
            committed[slot_idx] = True
            n_committed += 1
            job, targets = slots[slot_idx]
            if (telemetry.enabled() and payload.get("spans")
                    and payload.get("pid") != os.getpid()):
                # Pool workers record spans into their own process;
                # fold them into this process's aggregates so profile
                # tables cover parallel runs. Same-pid payloads already
                # aggregated locally — ingesting again would double
                # count.
                telemetry.ingest_spans(payload["spans"])
            if job.cacheable:
                owner, _ = targets[0]
                cache.put(job.key, payload, metadata={
                    "scenario": job.scenario.name,
                    "frequency_hz": float(job.frequency_hz),
                    "estimator": job.estimator_label,
                    "tags": dict(specs[owner].tags),
                })
            for name, i in targets:
                payloads[name][i] = payload
                done_in[name] += 1
            done_points += len(targets)
            _report(done_points)
            if batch_progress is not None:
                for name in dict.fromkeys(name for name, _ in targets):
                    batch_progress(name, done_in[name], totals[name])

        cached_points = done_points

        def _executor_progress(done_slots: int, _n_slots: int) -> None:
            # Custom executors that honor progress but ignore on_result
            # (the fallback loop below commits for them) still get a
            # live bar: each finished slot is at least one point.
            if n_committed == 0:
                _report(cached_points + done_slots)

        computed = executor.run(execute_job, [job for job, _ in slots],
                                progress=_executor_progress,
                                on_result=_commit)
        # Fallback for custom executors that ignore on_result.
        for slot_idx, payload in enumerate(computed):
            _commit(slot_idx, payload)

    wall = time.perf_counter() - start
    results: dict[str, SweepResult] = {}
    for name, spec in specs.items():
        points = []
        for i, job in enumerate(jobs_by_name[name]):
            payload = payloads[name][i]
            points.append(PointResult(
                scenario=job.scenario.name,
                frequency_hz=float(job.frequency_hz),
                estimator=job.estimator_label,
                key=job.key,
                mean=payload["mean"],
                std=payload["std"],
                values=payload["values"],
                n_evals=payload["n_evals"],
                seed=payload["seed"],
                wall_time_s=payload["wall_time_s"],
                cache_hit=hits[name][i],
                pid=payload.get("pid"),
                spans=payload.get("spans"),
            ))
        results[name] = SweepResult(
            frequencies_hz=spec.frequencies_hz,
            points=tuple(points),
            tags=dict(spec.tags),
            executor=executor.name,
            wall_time_s=wall,
        )
    return results


def run_sweep(spec: SweepSpec, executor: Executor | None = None,
              cache: ResultCache | None = None,
              progress: ProgressFn | None = None) -> SweepResult:
    """Execute (or replay from cache) every job of one sweep.

    Cached points are served without any SWM solve; the remaining jobs
    go to the executor as one batch. ``progress(done, total)`` counts
    sweep points, cache hits included.
    """
    if not isinstance(spec, SweepSpec):
        raise ConfigurationError(
            f"run_sweep expects a SweepSpec, got {type(spec).__name__}"
        )
    return run_batch({"sweep": spec}, executor=executor, cache=cache,
                     progress=progress)["sweep"]
