"""Worker-side job execution.

:func:`execute_job` is the single function every executor runs — in the
parent process (serial) or in pool workers (parallel). It is a plain
module-level function so :mod:`concurrent.futures` can pickle a
reference to it, and it returns a plain payload dict (scalars + one
float array) so results cross process boundaries and serialize to the
cache without custom reducers.

Models are memoized per *thread* keyed by the scenario's content hash:
a sweep with F frequencies per scenario pays the KL eigendecomposition
once per worker thread, not once per job. The memo must not be shared
across threads — solvers carry adaptive kernel tables that each job
resets, and two jobs of one scenario solving concurrently (the fleet
worker runs claims on a thread pool) would race on that shared state
and perturb each other's results at interpolation accuracy, breaking
the content-addressed cache's purity contract. The memo is bounded
(LRU) so long multi-scenario sweeps cannot grow worker memory without
limit.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict

import numpy as np

from ..telemetry import record_spans, span
from .spec import (
    DeterministicScenario,
    Job,
    ProfileScenario,
    StochasticScenario,
)

#: Models/solvers kept alive per thread (LRU on scenario hash).
_MEMO_MAX = 8
_memo_local = threading.local()


def _thread_memo() -> OrderedDict:
    memo = getattr(_memo_local, "memo", None)
    if memo is None:
        memo = _memo_local.memo = OrderedDict()
    return memo


def _memoized(key: str, build):
    memo = _thread_memo()
    cached = memo.get(key)
    if cached is not None:
        memo.move_to_end(key)
        return cached
    obj = build()
    memo[key] = obj
    while len(memo) > _MEMO_MAX:
        memo.popitem(last=False)
    return obj


def seed_model(scenario: StochasticScenario, model: object) -> None:
    """Pre-register an already-built model for a scenario.

    Lets the pipeline hand its own :class:`StochasticLossModel` to
    same-thread execution (serial, or forked workers inheriting the
    forking thread's memo) instead of paying the KL eigendecomposition
    a second time. Other threads rebuild their own — sharing would
    race on the solver's adaptive kernel tables. Job purity is
    unaffected: :func:`execute_job` resets the solver's kernel tables
    regardless of where the model came from.
    """
    _memoized(scenario.key, lambda: model)


def _model_for(scenario: StochasticScenario):
    from ..core.pipeline import StochasticLossModel

    return _memoized(scenario.key, lambda: StochasticLossModel(
        scenario.correlation, scenario.config, scenario.system,
        scenario.options))


def _profile_models_for(scenario: ProfileScenario, frequency_hz: float):
    """Scalar and batched ``xi -> enhancement`` maps for a 2D profile
    scenario.

    The generator's FFT amplitudes and the (stateless) 2D solver are
    memoized per scenario; the scalar closure is the same map Fig. 6
    historically built by hand: white noise -> profile -> 2D solve. The
    batched closure stacks the sample profiles into one
    :meth:`~repro.swm.solver2d.SWMSolver2D.solve_many_um` call
    (bit-identical values).
    """
    from ..surfaces.generation import ProfileGenerator
    from ..swm.solver2d import SWMSolver2D

    def build():
        gen = ProfileGenerator(scenario.correlation,
                               period=scenario.period_um, n=scenario.n,
                               normalize=scenario.normalize)
        solver = SWMSolver2D(scenario.system, scenario.options)
        return gen, solver

    gen, solver = _memoized(scenario.key, build)

    def model(xi: np.ndarray) -> float:
        profile = gen.from_white_noise(xi)
        return solver.solve_um(profile, scenario.period_um,
                               frequency_hz).enhancement

    def batch_model(xis: np.ndarray) -> np.ndarray:
        profiles = np.stack([gen.from_white_noise(xi) for xi in xis])
        results = solver.solve_many_um(profiles, scenario.period_um,
                                       frequency_hz)
        return np.array([r.enhancement for r in results], dtype=np.float64)

    return model, batch_model


def _batch_size_for(estimator, options) -> int | None:
    """Worker-side batch size: the estimator's knob, else the solver
    options' default (both perf-only, excluded from content hashes)."""
    if estimator.batch_size is not None:
        return estimator.batch_size
    return getattr(options, "batch_size", None) if options else None


def _solver_for(scenario: DeterministicScenario):
    from ..swm.solver import SWMSolver3D

    # Key on the system/options only: one solver (and its kernel-table
    # cache) serves every deterministic surface of that system.
    from .spec import content_hash, _system_spec
    from ..swm.solver import SWMOptions
    options = scenario.options or SWMOptions()
    key = "solver:" + content_hash({"system": _system_spec(scenario.system),
                                    "options": options.to_spec()})
    return _memoized(key, lambda: SWMSolver3D(scenario.system,
                                              scenario.options))


def execute_job(job: Job) -> dict:
    """Run one job and return its payload.

    Payload schema (kept flat and serializable)::

        mean, std      : float summary statistics
        values         : float64 array (SSCM node values / MC samples /
                         the single deterministic enhancement)
        n_evals        : number of SWM solves performed
        seed           : RNG seed (None for deterministic/SSCM jobs)
        wall_time_s    : compute time in the executing process
        pid            : executing process id (provenance)
        spans          : telemetry span dicts recorded during the solve
                         (only when :mod:`repro.telemetry` is enabled in
                         the executing process)
    """
    start = time.perf_counter()
    with record_spans() as spans, span(
            "job", scenario=job.scenario.name,
            frequency_hz=float(job.frequency_hz),
            estimator=job.estimator_label, key=job.key):
        mean, std, values, n_evals, seed = _run_job(job)
    payload = {
        "mean": float(mean),
        "std": float(std),
        "values": values,
        "n_evals": int(n_evals),
        "seed": seed,
        "wall_time_s": time.perf_counter() - start,
        "pid": os.getpid(),
    }
    if spans:
        payload["spans"] = spans
    return payload


def _run_job(job: Job) -> tuple:
    """Dispatch one job to its scenario kind's solve path."""
    scenario = job.scenario
    if isinstance(scenario, DeterministicScenario):
        solver = _solver_for(scenario)
        # Kernel tables adapt to the surfaces a solver has seen, so a
        # job's value must not depend on what ran before it in this
        # process: start every job from a history-free solver. Tables
        # still amortize *within* the job (the estimator's samples).
        solver.reset_tables()
        res = solver.solve(scenario.heights_m, scenario.period_m,
                           job.frequency_hz)
        values = np.array([res.enhancement], dtype=np.float64)
        mean, std = float(res.enhancement), 0.0
        n_evals, seed = 1, None
    elif isinstance(scenario, ProfileScenario):
        # The 2D solver keeps no cross-solve state, so no reset needed.
        fn, batch_fn = _profile_models_for(scenario, job.frequency_hz)
        est = job.estimator
        batch_size = _batch_size_for(est, scenario.options)
        if est.kind == "sscm":
            from ..stochastic.sscm import SSCMEstimator

            res = SSCMEstimator(fn, scenario.n, order=est.order,
                                batch_model=batch_fn).run(
                batch_size=batch_size)
            values = np.asarray(res.node_values, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, None
        else:
            from ..stochastic.montecarlo import MonteCarloEstimator

            res = MonteCarloEstimator(fn, scenario.n,
                                      batch_model=batch_fn).run(
                est.n_samples, seed=est.seed, batch_size=batch_size)
            values = np.asarray(res.samples, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, est.seed
    else:
        model = _model_for(scenario)
        model.solver.reset_tables()  # same purity argument as above
        est = job.estimator
        batch_size = _batch_size_for(est, scenario.options)
        if est.kind == "sscm":
            # sscm_direct, not sscm(): the public wrapper routes back
            # through the engine.
            res = model.sscm_direct(job.frequency_hz, order=est.order,
                                    batch_size=batch_size)
            values = np.asarray(res.node_values, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, None
        else:
            # Drive the estimator directly: the model's montecarlo()
            # wrapper routes back through the engine.
            from ..stochastic.montecarlo import MonteCarloEstimator

            estimator = MonteCarloEstimator(
                model.enhancement_model(job.frequency_hz), model.dimension,
                batch_model=model.enhancement_batch_model(job.frequency_hz))
            res = estimator.run(est.n_samples, seed=est.seed,
                                batch_size=batch_size)
            values = np.asarray(res.samples, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, est.seed
    return mean, std, values, n_evals, seed


def clear_memo() -> None:
    """Drop the calling thread's memoized models (tests; long-lived
    servers between sweeps)."""
    _thread_memo().clear()
