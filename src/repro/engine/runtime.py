"""Worker-side job execution.

:func:`execute_job` is the single function every executor runs — in the
parent process (serial) or in pool workers (parallel). It is a plain
module-level function so :mod:`concurrent.futures` can pickle a
reference to it, and it returns a plain payload dict (scalars + one
float array) so results cross process boundaries and serialize to the
cache without custom reducers.

Models are memoized per *thread* keyed by the scenario's content hash:
a sweep with F frequencies per scenario pays the KL eigendecomposition
once per worker thread, not once per job. The memo must not be shared
across threads — solvers carry adaptive kernel tables that each job
resets, and two jobs of one scenario solving concurrently (the fleet
worker runs claims on a thread pool) would race on that shared state
and perturb each other's results at interpolation accuracy, breaking
the content-addressed cache's purity contract. The memo is bounded
(LRU) so long multi-scenario sweeps cannot grow worker memory without
limit.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict

import numpy as np

from ..telemetry import record_spans, span
from .spec import (
    DeterministicScenario,
    Job,
    ProfileScenario,
    StochasticScenario,
)

#: Models/solvers kept alive per thread (LRU on scenario hash).
_MEMO_MAX = 8
_memo_local = threading.local()


def _thread_memo() -> OrderedDict:
    memo = getattr(_memo_local, "memo", None)
    if memo is None:
        memo = _memo_local.memo = OrderedDict()
    return memo


def _memoized(key: str, build):
    memo = _thread_memo()
    cached = memo.get(key)
    if cached is not None:
        memo.move_to_end(key)
        return cached
    obj = build()
    memo[key] = obj
    while len(memo) > _MEMO_MAX:
        memo.popitem(last=False)
    return obj


def seed_model(scenario: StochasticScenario, model: object) -> None:
    """Pre-register an already-built model for a scenario.

    Lets the pipeline hand its own :class:`StochasticLossModel` to
    same-thread execution (serial, or forked workers inheriting the
    forking thread's memo) instead of paying the KL eigendecomposition
    a second time. Other threads rebuild their own — sharing would
    race on the solver's adaptive kernel tables. Job purity is
    unaffected: :func:`execute_job` resets the solver's kernel tables
    regardless of where the model came from.
    """
    _memoized(scenario.key, lambda: model)


def _model_for(scenario: StochasticScenario):
    from ..core.pipeline import StochasticLossModel

    return _memoized(scenario.key, lambda: StochasticLossModel(
        scenario.correlation, scenario.config, scenario.system,
        scenario.options))


def _profile_components(scenario: ProfileScenario):
    """Memoized ``(generator, solver)`` pair for a 2D profile scenario.

    The generator's FFT amplitudes and the (stateless) 2D solver are
    shared by every job of the scenario on this thread.
    """
    from ..surfaces.generation import ProfileGenerator
    from ..swm.solver2d import SWMSolver2D

    def build():
        gen = ProfileGenerator(scenario.correlation,
                               period=scenario.period_um, n=scenario.n,
                               normalize=scenario.normalize)
        solver = SWMSolver2D(scenario.system, scenario.options)
        return gen, solver

    return _memoized(scenario.key, build)


def _profile_models_for(scenario: ProfileScenario, frequency_hz: float):
    """Scalar and batched ``xi -> enhancement`` maps for a 2D profile
    scenario.

    The components come from :func:`_profile_components`; the scalar
    closure is the same map Fig. 6 historically built by hand: white
    noise -> profile -> 2D solve. The batched closure stacks the sample
    profiles into one
    :meth:`~repro.swm.solver2d.SWMSolver2D.solve_many_um` call
    (bit-identical values).
    """
    gen, solver = _profile_components(scenario)

    def model(xi: np.ndarray) -> float:
        profile = gen.from_white_noise(xi)
        return solver.solve_um(profile, scenario.period_um,
                               frequency_hz).enhancement

    def batch_model(xis: np.ndarray) -> np.ndarray:
        profiles = np.stack([gen.from_white_noise(xi) for xi in xis])
        results = solver.solve_many_um(profiles, scenario.period_um,
                                       frequency_hz)
        return np.array([r.enhancement for r in results], dtype=np.float64)

    return model, batch_model


def _batch_size_for(estimator, options) -> int | None:
    """Worker-side batch size: the estimator's knob, else the solver
    options' default (both perf-only, excluded from content hashes)."""
    if estimator.batch_size is not None:
        return estimator.batch_size
    return getattr(options, "batch_size", None) if options else None


def _solver_for(scenario: DeterministicScenario):
    from ..swm.solver import SWMSolver3D

    # Key on the system/options only: one solver (and its kernel-table
    # cache) serves every deterministic surface of that system.
    from .spec import content_hash, _system_spec
    from ..swm.solver import SWMOptions
    options = scenario.options or SWMOptions()
    key = "solver:" + content_hash({"system": _system_spec(scenario.system),
                                    "options": options.to_spec()})
    return _memoized(key, lambda: SWMSolver3D(scenario.system,
                                              scenario.options))


def execute_job(job: Job) -> dict:
    """Run one job and return its payload.

    Payload schema (kept flat and serializable)::

        mean, std      : float summary statistics
        values         : float64 array (SSCM node values / MC samples /
                         the single deterministic enhancement)
        n_evals        : number of SWM solves performed
        seed           : RNG seed (None for deterministic/SSCM jobs)
        wall_time_s    : compute time in the executing process
        pid            : executing process id (provenance)
        spans          : telemetry span dicts recorded during the solve
                         (only when :mod:`repro.telemetry` is enabled in
                         the executing process)
    """
    start = time.perf_counter()
    with record_spans() as spans, span(
            "job", scenario=job.scenario.name,
            frequency_hz=float(job.frequency_hz),
            estimator=job.estimator_label, key=job.key):
        mean, std, values, n_evals, seed = _run_job(job)
    payload = {
        "mean": float(mean),
        "std": float(std),
        "values": values,
        "n_evals": int(n_evals),
        "seed": seed,
        "wall_time_s": time.perf_counter() - start,
        "pid": os.getpid(),
    }
    if spans:
        payload["spans"] = spans
    return payload


def _run_job(job: Job) -> tuple:
    """Dispatch one job to its scenario kind's solve path."""
    scenario = job.scenario
    if isinstance(scenario, DeterministicScenario):
        solver = _solver_for(scenario)
        # Kernel tables adapt to the surfaces a solver has seen, so a
        # job's value must not depend on what ran before it in this
        # process: start every job from a history-free solver. Tables
        # still amortize *within* the job (the estimator's samples).
        solver.reset_tables()
        res = solver.solve(scenario.heights_m, scenario.period_m,
                           job.frequency_hz)
        values = np.array([res.enhancement], dtype=np.float64)
        mean, std = float(res.enhancement), 0.0
        n_evals, seed = 1, None
    elif isinstance(scenario, ProfileScenario):
        # The 2D solver keeps no cross-solve state, so no reset needed.
        fn, batch_fn = _profile_models_for(scenario, job.frequency_hz)
        est = job.estimator
        batch_size = _batch_size_for(est, scenario.options)
        if est.kind == "sscm":
            from ..stochastic.sscm import SSCMEstimator

            res = SSCMEstimator(fn, scenario.n, order=est.order,
                                batch_model=batch_fn).run(
                batch_size=batch_size)
            values = np.asarray(res.node_values, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, None
        else:
            from ..stochastic.montecarlo import MonteCarloEstimator

            res = MonteCarloEstimator(fn, scenario.n,
                                      batch_model=batch_fn).run(
                est.n_samples, seed=est.seed, batch_size=batch_size)
            values = np.asarray(res.samples, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, est.seed
    else:
        model = _model_for(scenario)
        model.solver.reset_tables()  # same purity argument as above
        est = job.estimator
        batch_size = _batch_size_for(est, scenario.options)
        if est.kind == "sscm":
            # sscm_direct, not sscm(): the public wrapper routes back
            # through the engine.
            res = model.sscm_direct(job.frequency_hz, order=est.order,
                                    batch_size=batch_size)
            values = np.asarray(res.node_values, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, None
        else:
            # Drive the estimator directly: the model's montecarlo()
            # wrapper routes back through the engine.
            from ..stochastic.montecarlo import MonteCarloEstimator

            estimator = MonteCarloEstimator(
                model.enhancement_model(job.frequency_hz), model.dimension,
                batch_model=model.enhancement_batch_model(job.frequency_hz))
            res = estimator.run(est.n_samples, seed=est.seed,
                                batch_size=batch_size)
            values = np.asarray(res.samples, dtype=np.float64)
            mean, std = res.mean, res.std
            n_evals, seed = res.n_samples, est.seed
    return mean, std, values, n_evals, seed


def group_by_scenario(items: list, job_of=lambda item: item) -> list[list]:
    """Bucket ``items`` by ``(scenario hash, estimator)``, preserving
    first-seen order.

    ``job_of`` maps an item to its :class:`Job` (identity for plain job
    lists; claim batches pass an accessor). The grouping key is exactly
    :func:`execute_job_group`'s groupability condition, so every bucket
    is guaranteed to take the fused path — members differ only in
    ``frequency_hz``.
    """
    buckets: dict = {}
    ordered: list[list] = []
    for item in items:
        job = job_of(item)
        gkey = (job.scenario.key, job.estimator)
        bucket = buckets.get(gkey)
        if bucket is None:
            bucket = buckets[gkey] = []
            ordered.append(bucket)
        bucket.append(item)
    return ordered


def execute_job_group(jobs: list[Job]) -> list[dict]:
    """Run jobs sharing one scenario at different frequencies as a group.

    The fused counterpart of :func:`execute_job`: every job must carry
    the same scenario (equal content hash) and the same estimator spec,
    differing only in ``frequency_hz``. The group realizes each sample
    surface **once** and solves it as a frequency stack through
    ``solve_mesh_many_multi_k``, so the k-independent assembly plan is
    built once per mesh batch instead of once per frequency. Payloads
    are bit-identical to ``[execute_job(j) for j in jobs]`` — the xi
    streams, estimator chunk boundaries, and solver kernel-table
    histories are replicated exactly (tests/test_multifreq_stack.py
    asserts this) — and per-job content hashes, cache entries, and wire
    encoding are untouched.

    The measured group wall time is split over the jobs in proportion to
    their :func:`repro.engine.cost.estimate_job_cost` weight, so the
    scheduler's :class:`~repro.telemetry.CostCalibrator` still receives
    one plausible ``(cost, wall)`` observation per job. Telemetry spans
    (when enabled) describe the shared solve and ride on the first
    payload only.

    Grouping is an optimization, never a liability: jobs that cannot be
    grouped — and any grouped-path failure — fall back to per-job
    :func:`execute_job` calls, where a genuinely failing job raises its
    own error as before.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if len(jobs) == 1:
        return [execute_job(jobs[0])]
    first = jobs[0]
    groupable = all(job.scenario.key == first.scenario.key
                    and job.estimator == first.estimator
                    for job in jobs[1:])
    if not groupable:
        return [execute_job(job) for job in jobs]
    start = time.perf_counter()
    try:
        with record_spans() as spans, span(
                "job_group", scenario=first.scenario.name,
                estimator=first.estimator_label, jobs=len(jobs)):
            per_job = _run_job_group(jobs)
    except Exception:  # noqa: BLE001 — grouped path is an optimization
        # Fall back to per-job execution: a genuinely failing job
        # raises its own error there, exactly as before grouping.
        return [execute_job(job) for job in jobs]
    wall = time.perf_counter() - start

    from .cost import estimate_job_cost
    weights = [estimate_job_cost(job) for job in jobs]
    total = float(sum(weights))
    pid = os.getpid()
    payloads = []
    for i, (mean, std, values, n_evals, seed) in enumerate(per_job):
        share = weights[i] / total if total > 0.0 else 1.0 / len(jobs)
        payload = {
            "mean": float(mean),
            "std": float(std),
            "values": values,
            "n_evals": int(n_evals),
            "seed": seed,
            "wall_time_s": wall * share,
            "pid": pid,
        }
        if spans and i == 0:
            payload["spans"] = spans
        payloads.append(payload)
    return payloads


def _run_job_group(jobs: list[Job]) -> list[tuple]:
    """Grouped analogue of :func:`_run_job`: one result tuple per job."""
    scenario = jobs[0].scenario
    freqs = [float(job.frequency_hz) for job in jobs]
    est = jobs[0].estimator
    if isinstance(scenario, DeterministicScenario):
        from ..constants import METER_TO_UM
        from ..swm.geometry import build_mesh_3d

        solver = _solver_for(scenario)
        solver.reset_tables()  # same purity contract as _run_job
        # Mesh construction matches SWMSolver3D.solve exactly.
        heights_um = np.asarray(scenario.heights_m,
                                dtype=np.float64) * METER_TO_UM
        mesh = build_mesh_3d(heights_um,
                             float(scenario.period_m) * METER_TO_UM)
        stacks = solver.solve_mesh_many_multi_k([mesh], freqs)
        out = []
        for results in stacks:
            e = results[0].enhancement
            out.append((float(e), 0.0, np.array([e], dtype=np.float64),
                        1, None))
        return out
    if isinstance(scenario, ProfileScenario):
        from ..swm.geometry import build_mesh_2d

        gen, solver = _profile_components(scenario)
        period_um = float(scenario.period_um)

        def realize(xi: np.ndarray):
            # Matches solve_um / solve_many_um mesh construction.
            return build_mesh_2d(
                np.asarray(gen.from_white_noise(xi), dtype=np.float64),
                period_um)

        return _estimate_group(est, scenario.options, int(scenario.n),
                               realize, solver.solve_mesh_many_multi_k,
                               freqs)

    from ..swm.geometry import build_mesh_3d

    model = _model_for(scenario)
    # One reset covers every frequency: kernel-table keys include the
    # frequency, so each job's tables start cold exactly as they do on
    # the per-job path, and accumulate over the estimator's blocks in
    # the same order.
    model.solver.reset_tables()
    period_um = float(model.period_um)

    def realize(xi: np.ndarray):
        return build_mesh_3d(
            np.asarray(model.surface_from_xi(xi), dtype=np.float64),
            period_um)

    return _estimate_group(est, scenario.options, int(model.dimension),
                           realize, model.solver.solve_mesh_many_multi_k,
                           freqs)


def _estimate_group(est, options, dim: int, realize, solve_multi_k,
                    freqs: list[float]) -> list[tuple]:
    """Run one estimator over the frequency stack; one tuple per freq.

    Replicates the per-job estimators' evaluation-point streams and
    chunk boundaries exactly so grouped values are bit-identical:
    Monte-Carlo draws each xi block once from a fresh seeded generator
    (each per-job run draws the identical stream itself), SSCM walks
    the deterministic Smolyak nodes in the same blocks.
    """
    batch_size = _batch_size_for(est, options)
    if est.kind == "sscm":
        from ..stochastic.sparsegrid import smolyak_grid
        from ..stochastic.sscm import reproject_node_values

        nodes = smolyak_grid(dim, est.order).nodes
        values = _stacked_values(nodes, realize, solve_multi_k, freqs,
                                 batch_size)
        out = []
        for row in values:
            res = reproject_node_values(row, dim, est.order)
            out.append((res.mean, res.std,
                        np.asarray(res.node_values, dtype=np.float64),
                        res.n_samples, None))
        return out

    from ..stochastic.montecarlo import MonteCarloResult

    points = _mc_points(dim, int(est.n_samples), est.seed, batch_size)
    values = _stacked_values(points, realize, solve_multi_k, freqs,
                             batch_size)
    out = []
    for row in values:
        res = MonteCarloResult(samples=row, seed=est.seed)
        out.append((res.mean, res.std,
                    np.asarray(res.samples, dtype=np.float64),
                    res.n_samples, est.seed))
    return out


def _mc_points(dim: int, n_samples: int, seed, batch_size) -> np.ndarray:
    """Draw the exact xi stream the per-job Monte-Carlo runs consume.

    Blocks are drawn in the estimator's order and shapes from one fresh
    seeded generator — ``(take, dim)`` blocks when batching, single
    ``(dim,)`` draws otherwise — so row ``s`` equals the s-th draw of
    every per-job :meth:`MonteCarloEstimator.run` with the same seed.
    """
    rng = np.random.default_rng(seed)
    out = np.empty((max(n_samples, 0), dim), dtype=np.float64)
    done = 0
    while done < n_samples:
        if batch_size is not None:
            take = min(batch_size, n_samples - done)
            out[done:done + take] = rng.standard_normal((take, dim))
        else:
            take = 1
            out[done] = rng.standard_normal(dim)
        done += take
    return out


def _stacked_values(points: np.ndarray, realize, solve_multi_k,
                    freqs: list[float], batch_size) -> np.ndarray:
    """(F, S) enhancement matrix walking ``points`` in estimator blocks.

    Each block's meshes are realized once and solved for every
    frequency in one stacked call; block boundaries follow the per-job
    estimators (``batch_size`` chunks, or one point at a time) so the
    solvers' adaptive table state evolves identically.
    """
    n_points = points.shape[0]
    out = np.empty((len(freqs), n_points), dtype=np.float64)
    done = 0
    while done < n_points:
        take = (min(batch_size, n_points - done)
                if batch_size is not None else 1)
        meshes = [realize(xi) for xi in points[done:done + take]]
        stacks = solve_multi_k(meshes, freqs)
        for fi, results in enumerate(stacks):
            out[fi, done:done + take] = [r.enhancement for r in results]
        done += take
    return out


def clear_memo() -> None:
    """Drop the calling thread's memoized models (tests; long-lived
    servers between sweeps)."""
    _thread_memo().clear()
