"""Two-tier content-addressed result cache.

Tier 1 is a bounded in-memory LRU (dict of payloads); tier 2 is an
optional on-disk store with one ``<hash>.npz`` (array payload) plus one
``<hash>.json`` (scalar payload + human-readable provenance metadata)
per job. Keys are the :class:`~repro.engine.spec.Job` content hashes, so

- a repeated sweep against a warm store performs **zero** SWM solves;
- interrupted sweeps resume from whatever finished (each job commits
  independently);
- stores are shareable between machines — the hash pins every physics
  input, and tags/annotations are deliberately excluded from it.

Disk writes go through a temp file + :func:`os.replace` so concurrent
writers (parallel sweeps sharing a store) can never expose a torn file;
two writers racing on one key write byte-identical content anyway.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import ConfigurationError
from .spec import ENGINE_VERSION

#: Payload keys persisted as JSON (everything but the array). ``spans``
#: is a list of JSON-ready telemetry span dicts — provenance of the
#: original compute, replayed verbatim on a hit.
_SCALAR_KEYS = ("mean", "std", "n_evals", "seed", "wall_time_s", "pid",
                "spans")


def _jsonable(obj):
    """json.dumps fallback: metadata/tags are free-form provenance, so a
    numpy scalar or array in them must degrade gracefully instead of
    killing the sweep at commit time (after the solve already ran)."""
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return repr(obj)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance.

    Counters are bumped from every thread that touches the cache (the
    service's ``ThreadingHTTPServer`` runs one thread per request), so
    all mutation goes through :meth:`bump` under a lock — a bare
    ``stats.misses += 1`` is a read-modify-write that can drop counts
    under concurrency. Readers use :meth:`snapshot` for a consistent
    view; monitoring endpoints must not sum fields read one by one.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_evictions: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one counter field."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict[str, int]:
        """All counters (plus the ``hits`` total) in one atomic read."""
        with self._lock:
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "disk_evictions": self.disk_evictions,
                "hits": self.memory_hits + self.disk_hits,
            }

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class ResultCache:
    """In-memory LRU over an optional on-disk NPZ/JSON store.

    Parameters
    ----------
    max_memory_entries:
        LRU capacity; 0 disables the memory tier (useful to force the
        disk path or to disable caching entirely when ``disk_dir`` is
        also ``None``).
    disk_dir:
        Directory of the persistent tier; created on first use. ``None``
        keeps the cache memory-only.
    max_disk_bytes:
        Disk-tier budget. After every store, least-recently-used
        entries (by mtime — disk hits refresh it) are evicted until the
        tier fits, so a long-running service cannot fill the volume.
        ``None`` (default) disables eviction.
    """

    max_memory_entries: int = 256
    disk_dir: str | os.PathLike | None = None
    max_disk_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_memory_entries < 0:
            raise ConfigurationError(
                f"max_memory_entries must be >= 0, "
                f"got {self.max_memory_entries}"
            )
        if self.max_disk_bytes is not None and self.max_disk_bytes <= 0:
            raise ConfigurationError(
                f"max_disk_bytes must be positive, got {self.max_disk_bytes}"
            )
        self._memory: OrderedDict[str, dict] = OrderedDict()
        # Running disk-tier byte total (None = not yet scanned). Kept
        # incrementally so enforcing max_disk_bytes is O(1) per store;
        # the full directory scan only runs on first use and when the
        # budget is actually exceeded (eviction re-synchronizes it).
        self._disk_total: int | None = None
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            try:
                self.disk_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot use {self.disk_dir} as a cache directory: "
                    f"{exc}"
                ) from exc

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return (self.disk_dir is not None
                and self._disk_paths(key)[0].exists())

    def _disk_paths(self, key: str) -> tuple[Path, Path]:
        assert self.disk_dir is not None
        return (Path(self.disk_dir) / f"{key}.json",
                Path(self.disk_dir) / f"{key}.npz")

    # ------------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Look up a payload, promoting disk hits into memory.

        The returned dict is a per-call copy and its ``values`` array is
        read-only: callers mutating a result must not be able to corrupt
        what later cache hits replay.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.stats.bump("memory_hits")
            if self.max_disk_bytes is not None and self.disk_dir is not None:
                # Disk LRU eviction clocks on mtime; without this, a
                # hot entry served from memory would look cold on disk
                # and be the first one evicted.
                self._touch(key)
            return dict(payload)
        if self.disk_dir is not None:
            payload = self._disk_get(key)
            if payload is not None:
                self.stats.bump("disk_hits")
                self._touch(key)
                self._memory_put(key, payload)
                return dict(payload)
        self.stats.bump("misses")
        return None

    def put(self, key: str, payload: dict,
            metadata: Mapping[str, Any] | None = None) -> None:
        """Store a payload under its content hash in both tiers."""
        payload = dict(payload)
        values = np.array(payload["values"], dtype=np.float64, copy=True)
        values.flags.writeable = False
        payload["values"] = values
        self._memory_put(key, payload)
        if self.disk_dir is not None:
            self._disk_put(key, payload, metadata or {})
        self.stats.bump("stores")

    def clear(self) -> None:
        """Drop the memory tier (the disk store is left intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------

    def _memory_put(self, key: str, payload: dict) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _disk_get(self, key: str) -> dict | None:
        json_path, npz_path = self._disk_paths(key)
        try:
            with open(json_path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            with np.load(npz_path) as npz:
                values = np.asarray(npz["values"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        if record.get("engine_version") != ENGINE_VERSION:
            return None
        values.flags.writeable = False
        payload = dict(record["payload"])
        payload["values"] = values
        return payload

    def _disk_put(self, key: str, payload: dict,
                  metadata: Mapping[str, Any]) -> None:
        json_path, npz_path = self._disk_paths(key)
        record = {
            "engine_version": ENGINE_VERSION,
            "key": key,
            "created_unix": time.time(),
            "payload": {k: payload.get(k) for k in _SCALAR_KEYS},
            "metadata": dict(metadata),
        }
        buf = io.BytesIO()
        np.savez_compressed(buf, values=np.asarray(payload["values"]))
        self._atomic_write(npz_path, buf.getvalue())
        self._atomic_write(
            json_path,
            json.dumps(record, sort_keys=True, indent=1,
                       default=_jsonable).encode("utf-8"))
        if self.max_disk_bytes is not None:
            if self._disk_total is None:
                self._disk_total = sum(
                    size for _, size, _ in self._disk_entries())
            else:
                for path in (json_path, npz_path):
                    try:
                        self._disk_total += path.stat().st_size
                    except OSError:
                        pass
            if self._disk_total > self.max_disk_bytes:
                self._enforce_disk_budget()

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Disk-tier introspection and GC (the service's artifact store).
    # ------------------------------------------------------------------

    def _touch(self, key: str) -> None:
        """Refresh both files' mtime: the disk tier's LRU clock."""
        for path in self._disk_paths(key):
            try:
                os.utime(path)
            except OSError:
                pass  # concurrently evicted/purged — the read still won

    def _disk_entries(self) -> list[tuple[float, int, str]]:
        """``(mtime, bytes, key)`` per complete on-disk entry, oldest
        first. Orphaned halves (torn by an eviction race) count toward
        the pair they belong to; missing halves contribute zero."""
        assert self.disk_dir is not None
        entries = []
        for json_path in Path(self.disk_dir).glob("*.json"):
            key = json_path.stem
            size = 0
            mtime = 0.0
            for path in self._disk_paths(key):
                try:
                    st = path.stat()
                except OSError:
                    continue
                size += st.st_size
                mtime = max(mtime, st.st_mtime)
            entries.append((mtime, size, key))
        entries.sort()
        return entries

    def disk_size_bytes(self) -> int:
        """Total bytes of the disk tier (0 when memory-only)."""
        return self.disk_usage()[1]

    def disk_usage(self) -> tuple[int, int]:
        """``(entries, bytes)`` of the disk tier in one directory scan
        (stat only — no record is opened; cheap enough for monitoring
        endpoints to poll)."""
        if self.disk_dir is None:
            return 0, 0
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        self._disk_total = total
        return len(entries), total

    def _evict(self, key: str) -> None:
        # Disk-tier only: the memory LRU is bounded independently, and
        # a content-addressed payload can never go stale, so a still-hot
        # memory copy stays servable after its disk artifact is evicted.
        for path in self._disk_paths(key):
            try:
                os.remove(path)
            except OSError:
                pass
        self.stats.bump("disk_evictions")

    def _enforce_disk_budget(self) -> None:
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        for _, size, key in entries:
            if total <= self.max_disk_bytes:
                break
            self._evict(key)
            total -= size
        self._disk_total = total  # re-synchronized by the full scan

    def purge(self, older_than_s: float) -> int:
        """Delete disk entries idle for more than ``older_than_s``
        seconds (mtime-based, so recently *hit* entries survive).
        Returns the number of entries removed."""
        if older_than_s < 0:
            raise ConfigurationError(
                f"older_than_s must be >= 0, got {older_than_s}"
            )
        if self.disk_dir is None:
            return 0
        cutoff = time.time() - older_than_s
        purged = 0
        for mtime, size, key in self._disk_entries():
            if mtime < cutoff:
                self._evict(key)
                purged += 1
                if self._disk_total is not None:
                    self._disk_total = max(0, self._disk_total - size)
        return purged

    def get_record(self, key: str) -> dict | None:
        """The full stored record for ``key``: payload plus provenance.

        This is the artifact-store read path (``GET /v1/jobs/<hash>``):
        unlike :func:`get` it also returns the human-readable metadata
        and creation time the disk tier records. Memory-only caches
        synthesize a metadata-free record from the hot tier.
        """
        if self.disk_dir is not None:
            json_path, npz_path = self._disk_paths(key)
            try:
                with open(json_path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
                with np.load(npz_path) as npz:
                    values = np.asarray(npz["values"])
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                record = None
            else:
                if record.get("engine_version") == ENGINE_VERSION:
                    values.flags.writeable = False
                    record["payload"] = dict(record["payload"])
                    record["payload"]["values"] = values
                    return record
        payload = self._memory.get(key)
        if payload is None:
            return None
        return {"engine_version": ENGINE_VERSION, "key": key,
                "created_unix": None, "payload": dict(payload),
                "metadata": {}}

    def manifest(self) -> list[dict]:
        """One provenance entry per disk-tier artifact, oldest first.

        Each entry carries ``key``, ``bytes``, ``mtime_unix``,
        ``created_unix`` and the stored ``metadata`` (scenario,
        frequency, estimator, tags). An unreadable record (torn by a
        concurrent eviction) is skipped rather than failing the listing.
        """
        if self.disk_dir is None:
            return []
        out = []
        for mtime, size, key in self._disk_entries():
            json_path, _ = self._disk_paths(key)
            try:
                with open(json_path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, ValueError, json.JSONDecodeError):
                continue
            out.append({
                "key": key,
                "bytes": size,
                "mtime_unix": mtime,
                "created_unix": record.get("created_unix"),
                "engine_version": record.get("engine_version"),
                "metadata": record.get("metadata", {}),
            })
        return out
