"""Two-tier content-addressed result cache.

Tier 1 is a bounded in-memory LRU (dict of payloads); tier 2 is a
pluggable :class:`~repro.engine.artifacts.ArtifactStore` holding one
``npz`` blob (array payload) plus one ``json`` blob (scalar payload +
human-readable provenance metadata) per job. Keys are the
:class:`~repro.engine.spec.Job` content hashes, so

- a repeated sweep against a warm store performs **zero** SWM solves;
- interrupted sweeps resume from whatever finished (each job commits
  independently);
- stores are shareable between machines — the hash pins every physics
  input, and tags/annotations are deliberately excluded from it.

The default store is :class:`~repro.engine.artifacts.LocalDirStore`
(``disk_dir=`` builds one), which keeps the historical
``<hash>.json``/``<hash>.npz`` directory layout and its atomic-replace
write discipline; two writers racing on one key write byte-identical
content anyway. All LRU-eviction, purge and stats policy lives here —
above the store — so a shared object-store backend inherits it
unchanged.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import ConfigurationError
from .artifacts import ArtifactStore, LocalDirStore
from .spec import ENGINE_VERSION

#: Payload keys persisted as JSON (everything but the array). ``spans``
#: is a list of JSON-ready telemetry span dicts — provenance of the
#: original compute, replayed verbatim on a hit.
_SCALAR_KEYS = ("mean", "std", "n_evals", "seed", "wall_time_s", "pid",
                "spans")


def _jsonable(obj):
    """json.dumps fallback: metadata/tags are free-form provenance, so a
    numpy scalar or array in them must degrade gracefully instead of
    killing the sweep at commit time (after the solve already ran)."""
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return repr(obj)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance.

    Counters are bumped from every thread that touches the cache (the
    service's ``ThreadingHTTPServer`` runs one thread per request), so
    all mutation goes through :meth:`bump` under a lock — a bare
    ``stats.misses += 1`` is a read-modify-write that can drop counts
    under concurrency. Readers use :meth:`snapshot` for a consistent
    view; monitoring endpoints must not sum fields read one by one.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_evictions: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one counter field."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict[str, int]:
        """All counters (plus the ``hits`` total) in one atomic read."""
        with self._lock:
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "disk_evictions": self.disk_evictions,
                "hits": self.memory_hits + self.disk_hits,
            }

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class ResultCache:
    """In-memory LRU over an optional persistent artifact store.

    Parameters
    ----------
    max_memory_entries:
        LRU capacity; 0 disables the memory tier (useful to force the
        persistent path or to disable caching entirely when no store is
        configured).
    disk_dir:
        Directory of the persistent tier; created on first use and
        wrapped in a :class:`~repro.engine.artifacts.LocalDirStore`.
        ``None`` keeps the cache memory-only (unless ``store`` is set).
    max_disk_bytes:
        Persistent-tier budget. After every store, least-recently-used
        entries (by the store's recency clock — hits refresh it) are
        evicted until the tier fits, so a long-running service cannot
        fill the volume. ``None`` (default) disables eviction.
    store:
        An explicit :class:`~repro.engine.artifacts.ArtifactStore`
        backend for the persistent tier (mutually exclusive with
        ``disk_dir``). Eviction, purge and stats behave identically on
        any backend.
    """

    max_memory_entries: int = 256
    disk_dir: str | os.PathLike | None = None
    max_disk_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    store: ArtifactStore | None = None

    def __post_init__(self) -> None:
        if self.max_memory_entries < 0:
            raise ConfigurationError(
                f"max_memory_entries must be >= 0, "
                f"got {self.max_memory_entries}"
            )
        if self.max_disk_bytes is not None and self.max_disk_bytes <= 0:
            raise ConfigurationError(
                f"max_disk_bytes must be positive, got {self.max_disk_bytes}"
            )
        if self.store is not None and self.disk_dir is not None:
            raise ConfigurationError(
                "pass either disk_dir or store, not both"
            )
        self._memory: OrderedDict[str, dict] = OrderedDict()
        # Running persistent-tier byte total (None = not yet scanned).
        # Kept incrementally so enforcing max_disk_bytes is O(1) per
        # store; the full scan only runs on first use and when the
        # budget is actually exceeded (eviction re-synchronizes it).
        self._disk_total: int | None = None
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            try:
                self.store = LocalDirStore(self.disk_dir)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"cannot use {self.disk_dir} as a cache directory: "
                    f"{exc}"
                ) from exc
        elif isinstance(self.store, LocalDirStore):
            # Keep the introspection attribute meaningful for stores
            # that do live in a directory (monitoring endpoints print
            # it); non-directory backends leave it None.
            self.disk_dir = self.store.root

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.store is not None and self.store.has(key)

    def _disk_paths(self, key: str) -> tuple[Path, Path]:
        """The directory-backed store's file pair for ``key`` (tests
        and tooling age entries through it)."""
        assert isinstance(self.store, LocalDirStore)
        return (self.store._path(key, "json"), self.store._path(key, "npz"))

    # ------------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Look up a payload, promoting store hits into memory.

        The returned dict is a per-call copy and its ``values`` array is
        read-only: callers mutating a result must not be able to corrupt
        what later cache hits replay.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.stats.bump("memory_hits")
            if self.max_disk_bytes is not None and self.store is not None:
                # Store LRU eviction clocks on the recency stamp;
                # without this, a hot entry served from memory would
                # look cold in the store and be the first one evicted.
                self.store.touch(key)
            return dict(payload)
        if self.store is not None:
            payload = self._disk_get(key)
            if payload is not None:
                self.stats.bump("disk_hits")
                self.store.touch(key)
                self._memory_put(key, payload)
                return dict(payload)
        self.stats.bump("misses")
        return None

    def put(self, key: str, payload: dict,
            metadata: Mapping[str, Any] | None = None) -> None:
        """Store a payload under its content hash in both tiers."""
        payload = dict(payload)
        values = np.array(payload["values"], dtype=np.float64, copy=True)
        values.flags.writeable = False
        payload["values"] = values
        self._memory_put(key, payload)
        if self.store is not None:
            self._disk_put(key, payload, metadata or {})
        self.stats.bump("stores")

    def clear(self) -> None:
        """Drop the memory tier (the persistent store is left intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------

    def _memory_put(self, key: str, payload: dict) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _disk_get(self, key: str) -> dict | None:
        blobs = self.store.get(key)
        if blobs is None:
            return None
        try:
            record = json.loads(blobs["json"])
            with np.load(io.BytesIO(blobs["npz"])) as npz:
                values = np.asarray(npz["values"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) \
                or record.get("engine_version") != ENGINE_VERSION:
            return None
        values.flags.writeable = False
        payload = dict(record["payload"])
        payload["values"] = values
        return payload

    def _disk_put(self, key: str, payload: dict,
                  metadata: Mapping[str, Any]) -> None:
        record = {
            "engine_version": ENGINE_VERSION,
            "key": key,
            "created_unix": time.time(),
            "payload": {k: payload.get(k) for k in _SCALAR_KEYS},
            "metadata": dict(metadata),
        }
        buf = io.BytesIO()
        np.savez_compressed(buf, values=np.asarray(payload["values"]))
        blobs = {
            "npz": buf.getvalue(),
            "json": json.dumps(record, sort_keys=True, indent=1,
                               default=_jsonable).encode("utf-8"),
        }
        self.store.put(key, blobs)
        if self.max_disk_bytes is not None:
            if self._disk_total is None:
                self._disk_total = sum(
                    size for _, size, _ in self._disk_entries())
            else:
                self._disk_total += sum(len(b) for b in blobs.values())
            if self._disk_total > self.max_disk_bytes:
                self._enforce_disk_budget()

    # ------------------------------------------------------------------
    # Persistent-tier introspection and GC (the fleet's shared result
    # universe — policy lives here, bytes live in the ArtifactStore).
    # ------------------------------------------------------------------

    def _disk_entries(self) -> list[tuple[float, int, str]]:
        """``(mtime, bytes, key)`` per complete stored entry, oldest
        first."""
        assert self.store is not None
        return [(e.mtime_unix, e.bytes, e.key) for e in self.store.list()]

    def disk_size_bytes(self) -> int:
        """Total bytes of the persistent tier (0 when memory-only)."""
        return self.disk_usage()[1]

    def disk_usage(self) -> tuple[int, int]:
        """``(entries, bytes)`` of the persistent tier in one store
        scan (accounting only — no record is opened; cheap enough for
        monitoring endpoints to poll)."""
        if self.store is None:
            return 0, 0
        n_entries, total = self.store.size()
        self._disk_total = total
        return n_entries, total

    def _evict(self, key: str) -> None:
        # Persistent tier only: the memory LRU is bounded independently,
        # and a content-addressed payload can never go stale, so a
        # still-hot memory copy stays servable after its artifact is
        # evicted.
        self.store.delete(key)
        self.stats.bump("disk_evictions")

    def _enforce_disk_budget(self) -> None:
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        for _, size, key in entries:
            if total <= self.max_disk_bytes:
                break
            self._evict(key)
            total -= size
        self._disk_total = total  # re-synchronized by the full scan

    def purge(self, older_than_s: float) -> int:
        """Delete stored entries idle for more than ``older_than_s``
        seconds (recency-based, so recently *hit* entries survive).
        Returns the number of entries removed."""
        if older_than_s < 0:
            raise ConfigurationError(
                f"older_than_s must be >= 0, got {older_than_s}"
            )
        if self.store is None:
            return 0
        cutoff = time.time() - older_than_s
        purged = 0
        for mtime, size, key in self._disk_entries():
            if mtime < cutoff:
                self._evict(key)
                purged += 1
                if self._disk_total is not None:
                    self._disk_total = max(0, self._disk_total - size)
        return purged

    def get_record(self, key: str) -> dict | None:
        """The full stored record for ``key``: payload plus provenance.

        This is the artifact-store read path (``GET /v1/jobs/<hash>``):
        unlike :func:`get` it also returns the human-readable metadata
        and creation time the disk tier records. Memory-only caches
        synthesize a metadata-free record from the hot tier.
        """
        if self.store is not None:
            blobs = self.store.get(key)
            record = None
            if blobs is not None:
                try:
                    record = json.loads(blobs["json"])
                    with np.load(io.BytesIO(blobs["npz"])) as npz:
                        values = np.asarray(npz["values"])
                except (OSError, ValueError, KeyError,
                        json.JSONDecodeError):
                    record = None
            if (isinstance(record, dict)
                    and record.get("engine_version") == ENGINE_VERSION):
                values.flags.writeable = False
                record["payload"] = dict(record["payload"])
                record["payload"]["values"] = values
                return record
        payload = self._memory.get(key)
        if payload is None:
            return None
        return {"engine_version": ENGINE_VERSION, "key": key,
                "created_unix": None, "payload": dict(payload),
                "metadata": {}}

    def manifest(self) -> list[dict]:
        """One provenance entry per stored artifact, oldest first.

        Each entry carries ``key``, ``bytes``, ``mtime_unix``,
        ``created_unix`` and the stored ``metadata`` (scenario,
        frequency, estimator, tags). An unreadable record (torn by a
        concurrent eviction) is skipped rather than failing the listing.
        """
        if self.store is None:
            return []
        out = []
        for mtime, size, key in self._disk_entries():
            blobs = self.store.get(key, names=("json",))
            if blobs is None:
                continue
            try:
                record = json.loads(blobs["json"])
            except (ValueError, json.JSONDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            out.append({
                "key": key,
                "bytes": size,
                "mtime_unix": mtime,
                "created_unix": record.get("created_unix"),
                "engine_version": record.get("engine_version"),
                "metadata": record.get("metadata", {}),
            })
        return out
