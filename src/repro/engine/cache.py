"""Two-tier content-addressed result cache.

Tier 1 is a bounded in-memory LRU (dict of payloads); tier 2 is an
optional on-disk store with one ``<hash>.npz`` (array payload) plus one
``<hash>.json`` (scalar payload + human-readable provenance metadata)
per job. Keys are the :class:`~repro.engine.spec.Job` content hashes, so

- a repeated sweep against a warm store performs **zero** SWM solves;
- interrupted sweeps resume from whatever finished (each job commits
  independently);
- stores are shareable between machines — the hash pins every physics
  input, and tags/annotations are deliberately excluded from it.

Disk writes go through a temp file + :func:`os.replace` so concurrent
writers (parallel sweeps sharing a store) can never expose a torn file;
two writers racing on one key write byte-identical content anyway.
"""

from __future__ import annotations

import io
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import ConfigurationError
from .spec import ENGINE_VERSION

#: Payload keys persisted as JSON scalars (everything but the array).
_SCALAR_KEYS = ("mean", "std", "n_evals", "seed", "wall_time_s", "pid")


def _jsonable(obj):
    """json.dumps fallback: metadata/tags are free-form provenance, so a
    numpy scalar or array in them must degrade gracefully instead of
    killing the sweep at commit time (after the solve already ran)."""
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return repr(obj)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class ResultCache:
    """In-memory LRU over an optional on-disk NPZ/JSON store.

    Parameters
    ----------
    max_memory_entries:
        LRU capacity; 0 disables the memory tier (useful to force the
        disk path or to disable caching entirely when ``disk_dir`` is
        also ``None``).
    disk_dir:
        Directory of the persistent tier; created on first use. ``None``
        keeps the cache memory-only.
    """

    max_memory_entries: int = 256
    disk_dir: str | os.PathLike | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_memory_entries < 0:
            raise ConfigurationError(
                f"max_memory_entries must be >= 0, "
                f"got {self.max_memory_entries}"
            )
        self._memory: OrderedDict[str, dict] = OrderedDict()
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            try:
                self.disk_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot use {self.disk_dir} as a cache directory: "
                    f"{exc}"
                ) from exc

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return (self.disk_dir is not None
                and self._disk_paths(key)[0].exists())

    def _disk_paths(self, key: str) -> tuple[Path, Path]:
        assert self.disk_dir is not None
        return (Path(self.disk_dir) / f"{key}.json",
                Path(self.disk_dir) / f"{key}.npz")

    # ------------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Look up a payload, promoting disk hits into memory.

        The returned dict is a per-call copy and its ``values`` array is
        read-only: callers mutating a result must not be able to corrupt
        what later cache hits replay.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return dict(payload)
        if self.disk_dir is not None:
            payload = self._disk_get(key)
            if payload is not None:
                self.stats.disk_hits += 1
                self._memory_put(key, payload)
                return dict(payload)
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: dict,
            metadata: Mapping[str, Any] | None = None) -> None:
        """Store a payload under its content hash in both tiers."""
        payload = dict(payload)
        values = np.array(payload["values"], dtype=np.float64, copy=True)
        values.flags.writeable = False
        payload["values"] = values
        self._memory_put(key, payload)
        if self.disk_dir is not None:
            self._disk_put(key, payload, metadata or {})
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop the memory tier (the disk store is left intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------

    def _memory_put(self, key: str, payload: dict) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _disk_get(self, key: str) -> dict | None:
        json_path, npz_path = self._disk_paths(key)
        try:
            with open(json_path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            with np.load(npz_path) as npz:
                values = np.asarray(npz["values"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        if record.get("engine_version") != ENGINE_VERSION:
            return None
        values.flags.writeable = False
        payload = dict(record["payload"])
        payload["values"] = values
        return payload

    def _disk_put(self, key: str, payload: dict,
                  metadata: Mapping[str, Any]) -> None:
        json_path, npz_path = self._disk_paths(key)
        record = {
            "engine_version": ENGINE_VERSION,
            "key": key,
            "created_unix": time.time(),
            "payload": {k: payload.get(k) for k in _SCALAR_KEYS},
            "metadata": dict(metadata),
        }
        buf = io.BytesIO()
        np.savez_compressed(buf, values=np.asarray(payload["values"]))
        self._atomic_write(npz_path, buf.getvalue())
        self._atomic_write(
            json_path,
            json.dumps(record, sort_keys=True, indent=1,
                       default=_jsonable).encode("utf-8"))

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
