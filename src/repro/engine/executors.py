"""Pluggable sweep executors.

Both executors implement the same contract::

    run(fn, items, progress=None, on_result=None) -> list  # item order

``progress(done, total)`` is invoked as items complete, and
``on_result(index, result)`` fires per finished item **as results
arrive** — that is what lets the engine commit each point to the cache
immediately, so an interrupted sweep keeps everything that finished. The parallel
executor schedules **chunks** of jobs onto a
:class:`~concurrent.futures.ProcessPoolExecutor`: chunking amortizes the
per-task pickling overhead and lets workers reuse their per-process
model memo (see :mod:`repro.engine.runtime`) across the jobs of a
chunk. Because every job is independent and internally deterministic,
serial and parallel execution produce bit-identical results.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError

ProgressFn = Callable[[int, int], None]
ResultFn = Callable[[int, Any], None]


class Executor(ABC):
    """Strategy for evaluating a batch of independent jobs."""

    name: str = "abstract"

    @abstractmethod
    def run(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: ProgressFn | None = None,
            on_result: ResultFn | None = None) -> list:
        """Apply ``fn`` to every item, preserving input order."""


class SerialExecutor(Executor):
    """In-process, one job at a time — the reference execution order."""

    name = "serial"

    def run(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: ProgressFn | None = None,
            on_result: ResultFn | None = None) -> list:
        total = len(items)
        out = []
        for i, item in enumerate(items):
            result = fn(item)
            out.append(result)
            if on_result is not None:
                on_result(i, result)
            if progress is not None:
                progress(i + 1, total)
        return out

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _run_chunk(fn: Callable[[Any], Any], chunk: list) -> list:
    """Module-level so the process pool can pickle it."""
    return [fn(item) for item in chunk]


class ParallelExecutor(Executor):
    """Process-pool execution with chunked scheduling.

    Parameters
    ----------
    n_jobs:
        Worker process count; ``None`` uses ``os.cpu_count()``.
    chunksize:
        Jobs per scheduled task; ``None`` targets ~4 chunks per worker
        (load balancing) while never splitting below one job.
    """

    name = "parallel"

    def __init__(self, n_jobs: int | None = None,
                 chunksize: int | None = None) -> None:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        self.n_jobs = int(n_jobs)
        self.chunksize = chunksize

    def _chunks(self, items: Sequence[Any]) -> list[list]:
        size = self.chunksize
        if size is None:
            size = max(1, math.ceil(len(items) / (4 * self.n_jobs)))
        return [list(items[i:i + size])
                for i in range(0, len(items), size)]

    def run(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: ProgressFn | None = None,
            on_result: ResultFn | None = None) -> list:
        total = len(items)
        if total == 0:
            return []
        if self.n_jobs == 1 or total == 1:
            return SerialExecutor().run(fn, items, progress=progress,
                                        on_result=on_result)

        chunks = self._chunks(items)
        offsets = [0] * len(chunks)
        for i in range(1, len(chunks)):
            offsets[i] = offsets[i - 1] + len(chunks[i - 1])
        results: list[list | None] = [None] * len(chunks)
        done_items = 0
        error: Exception | None = None
        with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(chunks))) as pool:
            future_index = {pool.submit(_run_chunk, fn, chunk): i
                            for i, chunk in enumerate(chunks)}
            pending = set(future_index)
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    i = future_index[future]
                    try:
                        results[i] = future.result()
                    except CancelledError:
                        continue
                    except Exception as exc:  # noqa: BLE001 — first failure wins, re-raised after drain
                        # First failure wins; cancel what hasn't started
                        # but keep draining running chunks so their
                        # results still reach on_result (the engine
                        # commits them to the cache before we re-raise).
                        if error is None:
                            error = exc
                            for f in pending:
                                f.cancel()
                        continue
                    if on_result is not None:
                        for j, result in enumerate(results[i]):
                            on_result(offsets[i] + j, result)
                    done_items += len(chunks[i])
                    if progress is not None:
                        progress(done_items, total)
        if error is not None:
            raise error
        return [payload for chunk in results for payload in chunk]

    def __repr__(self) -> str:
        return (f"ParallelExecutor(n_jobs={self.n_jobs}, "
                f"chunksize={self.chunksize})")
