"""Pluggable artifact stores — the persistent tier behind the cache.

:class:`~repro.engine.cache.ResultCache` historically wrote its disk
tier inline (``<hash>.json`` + ``<hash>.npz`` per job). The fleet
(ROADMAP item 1: N service replicas + M pull workers sharing one result
universe) needs that tier swappable for a shared backend, so the raw
byte-level operations now live behind :class:`ArtifactStore`:

- an **entry** is one content hash (the job key) owning a small set of
  named byte **blobs** (``"json"`` for the record, ``"npz"`` for the
  array payload);
- stores only move bytes — (de)serialization, engine-version checks and
  LRU/stats policy stay in :class:`~repro.engine.cache.ResultCache`, so
  every backend inherits identical cache semantics;
- :meth:`ArtifactStore.list`/:meth:`~ArtifactStore.touch` expose the
  recency clock the cache's disk-LRU eviction and ``purge`` run on.

:class:`LocalDirStore` is the default and keeps the exact historical
on-disk layout (suffix-per-blob files, pid-tagged temp files +
``os.replace`` for torn-write safety), so existing cache directories —
and every existing cache test — work unchanged. An S3/GCS-style object
store is the intended follow-up: implement the six methods and hand it
to ``ResultCache(store=...)``.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ArtifactEntry:
    """One stored entry's accounting view: size and recency."""

    key: str
    bytes: int
    mtime_unix: float


class ArtifactStore(ABC):
    """Named-blob storage keyed by content hash.

    The contract is deliberately byte-oriented and small:

    ======================  ==========================================
    ``put(key, blobs)``     store all blobs of one entry (overwrite)
    ``get(key, names)``     read blobs back, ``None`` if incomplete
    ``has(key)``            cheap existence probe
    ``delete(key)``         drop an entry (idempotent)
    ``list()``              accounting entries, least-recent first
    ``size()``              ``(entries, total_bytes)`` in one pass
    ======================  ==========================================

    plus :meth:`touch`, the recency bump that makes ``list()`` an LRU
    order. Concurrent writers racing on one key must never expose a
    torn blob; content addressing makes their payloads identical, so
    last-write-wins is sufficient.
    """

    name: str = "abstract"

    @abstractmethod
    def put(self, key: str, blobs: Mapping[str, bytes]) -> None:
        """Store every named blob of ``key`` (atomic per blob)."""

    @abstractmethod
    def get(self, key: str, names: Sequence[str] | None = None
            ) -> dict[str, bytes] | None:
        """Read the named blobs (default: all known names) of ``key``.

        Returns ``None`` when any requested blob is missing or
        unreadable — a partial entry is treated as absent.
        """

    @abstractmethod
    def has(self, key: str) -> bool:
        """True if the entry exists (its primary blob is present)."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove the entry; True if anything was deleted."""

    @abstractmethod
    def list(self) -> list[ArtifactEntry]:
        """All entries, least-recently-used first."""

    @abstractmethod
    def size(self) -> tuple[int, int]:
        """``(entries, total_bytes)`` of the store."""

    def touch(self, key: str) -> None:
        """Refresh the entry's recency clock (best-effort no-op)."""


#: Blob names the result cache stores, in primary-first order: the
#: ``json`` record is the entry's existence marker.
BLOB_NAMES = ("json", "npz")


class LocalDirStore(ArtifactStore):
    """Directory-backed store with the historical cache layout.

    One file per blob, named ``<key>.<blob-name>`` — byte-compatible
    with every cache directory written before the store abstraction
    existed. Writes go through a pid-tagged temp file +
    :func:`os.replace` so concurrent writers (replicas and workers
    sharing one volume) can never expose a torn file; recency is the
    filesystem mtime, refreshed by :meth:`touch`.
    """

    name = "local-dir"

    def __init__(self, root: str | os.PathLike,
                 blob_names: Sequence[str] = BLOB_NAMES) -> None:
        if not blob_names:
            raise ConfigurationError("LocalDirStore needs >= 1 blob name")
        self.root = Path(root)
        self.blob_names = tuple(blob_names)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.root} as an artifact store: {exc}"
            ) from exc

    def _path(self, key: str, name: str) -> Path:
        return self.root / f"{key}.{name}"

    def put(self, key: str, blobs: Mapping[str, bytes]) -> None:
        for name, data in blobs.items():
            path = self._path(key, name)
            tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)

    def get(self, key: str, names: Sequence[str] | None = None
            ) -> dict[str, bytes] | None:
        out: dict[str, bytes] = {}
        for name in (self.blob_names if names is None else names):
            try:
                out[name] = self._path(key, name).read_bytes()
            except OSError:
                return None
        return out

    def has(self, key: str) -> bool:
        return self._path(key, self.blob_names[0]).exists()

    def delete(self, key: str) -> bool:
        removed = False
        for name in self.blob_names:
            try:
                os.remove(self._path(key, name))
                removed = True
            except OSError:
                pass
        return removed

    def touch(self, key: str) -> None:
        for name in self.blob_names:
            try:
                os.utime(self._path(key, name))
            except OSError:
                pass  # concurrently evicted/purged — the read still won

    def list(self) -> list[ArtifactEntry]:
        """``ArtifactEntry`` per complete entry, oldest mtime first.

        Orphaned halves (torn by an eviction race) count toward the
        entry they belong to; missing halves contribute zero.
        """
        entries = []
        primary = self.blob_names[0]
        for marker in self.root.glob(f"*.{primary}"):
            key = marker.stem
            size = 0
            mtime = 0.0
            for name in self.blob_names:
                try:
                    st = self._path(key, name).stat()
                except OSError:
                    continue
                size += st.st_size
                mtime = max(mtime, st.st_mtime)
            entries.append(ArtifactEntry(key=key, bytes=size,
                                         mtime_unix=mtime))
        entries.sort(key=lambda e: (e.mtime_unix, e.key))
        return entries

    def size(self) -> tuple[int, int]:
        entries = self.list()
        return len(entries), sum(e.bytes for e in entries)

    def __repr__(self) -> str:
        return f"LocalDirStore({str(self.root)!r})"


class MemoryStore(ArtifactStore):
    """In-process dict-backed store (tests; ephemeral replicas).

    Implements the full contract — including the recency clock — with
    no filesystem, which is what makes the cache's LRU/purge semantics
    testable against a second backend and proves the interface carries
    every policy the disk tier needs.
    """

    name = "memory"

    def __init__(self) -> None:
        self._blobs: dict[str, dict[str, bytes]] = {}
        self._mtime: dict[str, float] = {}

    def put(self, key: str, blobs: Mapping[str, bytes]) -> None:
        self._blobs.setdefault(key, {}).update(
            {name: bytes(data) for name, data in blobs.items()})
        self._mtime[key] = time.time()

    def get(self, key: str, names: Sequence[str] | None = None
            ) -> dict[str, bytes] | None:
        entry = self._blobs.get(key)
        if entry is None:
            return None
        wanted = tuple(entry) if names is None else tuple(names)
        if any(name not in entry for name in wanted):
            return None
        return {name: entry[name] for name in wanted}

    def has(self, key: str) -> bool:
        return key in self._blobs

    def delete(self, key: str) -> bool:
        self._mtime.pop(key, None)
        return self._blobs.pop(key, None) is not None

    def touch(self, key: str) -> None:
        if key in self._mtime:
            self._mtime[key] = time.time()

    def list(self) -> list[ArtifactEntry]:
        entries = [
            ArtifactEntry(key=key,
                          bytes=sum(len(b) for b in blobs.values()),
                          mtime_unix=self._mtime.get(key, 0.0))
            for key, blobs in self._blobs.items()
        ]
        entries.sort(key=lambda e: (e.mtime_unix, e.key))
        return entries

    def size(self) -> tuple[int, int]:
        entries = self.list()
        return len(entries), sum(e.bytes for e in entries)

    def __repr__(self) -> str:
        return f"MemoryStore(entries={len(self._blobs)})"
