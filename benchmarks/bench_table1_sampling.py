"""Table I benchmark: sampling-point counts, MC vs sparse-grid SSCM."""

from conftest import run_and_report


def test_table1_sampling_points(benchmark, scale):
    run_and_report(benchmark, "table1", scale)
