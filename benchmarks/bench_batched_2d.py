"""Batched 2D profile solves: the fused-kernel MC hot path vs the
per-sample loop.

The workload is a quick-scale slice of the paper's Fig. 6 comparison —
the 2D (ridged-surface) Monte-Carlo curves that demonstrate 2D roughness
models underestimate loss: Gaussian CF, sigma = eta = 1 um, 96-point
profile on a 5 um period (fig6's quick-scale 2D grid), 16 samples at
5 GHz. Measured both ways through the same estimator:

- per-sample: ``MonteCarloEstimator.run(batch_size=None)`` — one 2D
  assemble + LU round trip per sample;
- batched: ``run(batch_size=S)`` through
  ``SWMSolver2D.solve_many_um`` — sample systems assembled with the
  sample axis vectorized and *both media's* Kummer green + gradient
  mode sums fused into one ``periodic_green2d_pair`` pass
  (``assemble_media_pair_2d_many``), stacked ``(B, 2n, 2n)`` and
  factored via batched ``np.linalg.solve``.

Samples must come back **bit-identical** (same seed stream, same
LAPACK); the benchmark asserts that before it reports throughput.
Reference numbers from the 1-core dev container: ~1.6x single-core
throughput at the fig6 quick grid. The default wall-clock floor of 1.2
leaves the same noisy-runner headroom as ``bench_batched_solve.py``'s
default gate (unlike that bench, CI keeps it enabled — the fused
kernel's margin is wide enough); set ``REPRO_BENCH_2D_MIN_SPEEDUP=0``
to record timings without gating.

Run under pytest (``pytest benchmarks/bench_batched_2d.py``) or
directly (``python benchmarks/bench_batched_2d.py --output out.json``)
to write the JSON summary CI uploads with the experiment artifacts.
"""

import argparse
import json
import os
import time
import warnings

import numpy as np

from repro.constants import GHZ
from repro.stochastic.montecarlo import MonteCarloEstimator
from repro.surfaces import GaussianCorrelation, ProfileGenerator
from repro.swm.solver2d import SWMSolver2D

#: fig6 quick-scale 2D workload: n = max(96, 8 * n3) profile points,
#: n_samples = max(16, mc_samples // 2) seeded MC samples.
N_SAMPLES = int(os.environ.get("REPRO_BENCH_2D_SAMPLES", "16"))
N_POINTS = int(os.environ.get("REPRO_BENCH_2D_POINTS", "96"))
PERIOD_UM = 5.0
FREQUENCY_HZ = 5 * GHZ
SEED = 0
#: CI gate: the dev-container measurement is ~1.6x; shared runners are
#: noisy, so the hard floor matches bench_batched_solve.py's margin.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_2D_MIN_SPEEDUP", "1.2"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _models():
    """Scalar and batched xi -> enhancement maps (the engine's
    ``_profile_models_for`` closures, built by hand)."""
    gen = ProfileGenerator(GaussianCorrelation(sigma=1.0, eta=1.0),
                           period=PERIOD_UM, n=N_POINTS, normalize=True)
    solver = SWMSolver2D()

    def model(xi: np.ndarray) -> float:
        profile = gen.from_white_noise(xi)
        return solver.solve_um(profile, PERIOD_UM, FREQUENCY_HZ).enhancement

    def batch_model(xis: np.ndarray) -> np.ndarray:
        profiles = np.stack([gen.from_white_noise(xi) for xi in xis])
        results = solver.solve_many_um(profiles, PERIOD_UM, FREQUENCY_HZ)
        return np.array([r.enhancement for r in results], dtype=np.float64)

    return model, batch_model


def measure() -> dict:
    """Time both paths (best of REPEATS) and verify bit-identity."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        model, batch_model = _models()
        est = MonteCarloEstimator(model, N_POINTS, batch_model=batch_model)
        est.run(min(4, N_SAMPLES), seed=SEED)  # warm imports/allocators
        times: dict[str, float] = {}
        samples: dict[str, np.ndarray] = {}
        for name, bs in (("per_sample", None), ("batched", N_SAMPLES)):
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                res = est.run(N_SAMPLES, seed=SEED, batch_size=bs)
                best = min(best, time.perf_counter() - start)
            times[name] = best
            samples[name] = res.samples
    bit_identical = bool(np.array_equal(samples["per_sample"],
                                        samples["batched"]))
    speedup = times["per_sample"] / times["batched"]
    return {
        "workload": {
            "figure": "fig6-style 2D MC batch",
            "profile_points": N_POINTS,
            "period_um": PERIOD_UM,
            "n_samples": N_SAMPLES,
            "frequency_ghz": FREQUENCY_HZ / GHZ,
            "seed": SEED,
        },
        "per_sample_s": times["per_sample"],
        "batched_s": times["batched"],
        "per_sample_throughput": N_SAMPLES / times["per_sample"],
        "batched_throughput": N_SAMPLES / times["batched"],
        "speedup": speedup,
        "bit_identical": bit_identical,
        "min_speedup_gate": MIN_SPEEDUP,
    }


def _report(summary: dict) -> None:
    print(f"per-sample: {summary['per_sample_s']:7.3f} s  "
          f"({summary['per_sample_throughput']:.1f} samples/s)")
    print(f"batched:    {summary['batched_s']:7.3f} s  "
          f"({summary['batched_throughput']:.1f} samples/s)  "
          f"speedup x{summary['speedup']:.2f}")
    print(f"bit-identical samples: {summary['bit_identical']}")


def test_batched_2d_speedup(benchmark):
    summary = benchmark.pedantic(measure, iterations=1, rounds=1)
    print()
    _report(summary)
    assert summary["bit_identical"], \
        "batched 2D MC samples diverged from the per-sample loop"
    assert summary["speedup"] >= MIN_SPEEDUP, \
        f"batched 2D speedup x{summary['speedup']:.2f} below x{MIN_SPEEDUP}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write the JSON summary here")
    args = parser.parse_args()
    summary = measure()
    _report(summary)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.output}")
    if not summary["bit_identical"]:
        raise SystemExit("batched 2D samples are not bit-identical")
    if summary["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup x{summary['speedup']:.2f} below gate x{MIN_SPEEDUP}")


if __name__ == "__main__":
    main()
