"""Batched sample solves: the vectorized MC/SSCM hot path vs the
per-sample loop.

The workload is a quick-scale Monte-Carlo batch of the paper's Fig. 7
setting (Gaussian CF, sigma = eta = 1 um, 5 GHz): 24 samples per
frequency — i.e. "hundreds of deterministic SWM solves per statistics
point" at CI scale. Measured both ways through the same estimator:

- per-sample: ``MonteCarloEstimator.run(batch_size=None)`` — one
  assemble + LU round trip per sample (the pre-batching execution
  model);
- batched: ``run(batch_size=S)`` through
  ``StochasticLossModel.enhancement_batch_model`` — sample systems
  assembled with the sample axis vectorized against shared kernel
  tables, stacked ``(B, 2n, 2n)`` and factored via batched
  ``np.linalg.solve``, with the solver's cache-aware auto-chunking.

Samples must come back **bit-identical** (same seed stream, same
LAPACK); the benchmark asserts that before it reports throughput.
Reference numbers from the 1-core dev container: ~1.6x single-core
throughput at the quick grid (8 points/side), shrinking toward ~1.3x on
finer grids as the elementwise kernel work (identical in both paths)
dominates the amortized per-sample Python overhead.

Run under pytest (``pytest benchmarks/bench_batched_solve.py``) or
directly (``python benchmarks/bench_batched_solve.py --output out.json``)
to write the JSON summary CI uploads with the experiment artifacts.
"""

import argparse
import json
import os
import time
import warnings

import numpy as np

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig, StochasticLossModel
from repro.stochastic.montecarlo import MonteCarloEstimator
from repro.surfaces import GaussianCorrelation

#: Quick-scale workload: >= 16 samples/frequency per the sweep cost
#: story of Section III-D / Table I.
N_SAMPLES = int(os.environ.get("REPRO_BENCH_MC_SAMPLES", "24"))
POINTS_PER_SIDE = int(os.environ.get("REPRO_BENCH_GRID", "8"))
FREQUENCY_HZ = 5 * GHZ
SEED = 0
#: CI gate: the dev-container measurement is ~1.6x, but benchmarks on
#: shared runners are noisy, so the hard floor is conservative.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.2"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _model() -> StochasticLossModel:
    return StochasticLossModel(
        GaussianCorrelation(sigma=1 * UM, eta=1 * UM),
        StochasticLossConfig(points_per_side=POINTS_PER_SIDE, max_modes=8))


def _run_mc(model: StochasticLossModel, batch_size: int | None):
    # reset_tables: every run pays the same cold-table cost the engine's
    # per-job purity reset imposes, in both modes.
    model.solver.reset_tables()
    est = MonteCarloEstimator(
        model.enhancement_model(FREQUENCY_HZ), model.dimension,
        batch_model=model.enhancement_batch_model(FREQUENCY_HZ))
    return est.run(N_SAMPLES, seed=SEED, batch_size=batch_size)


def measure() -> dict:
    """Time both paths (best of REPEATS) and verify bit-identity."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        model = _model()
        _run_mc(model, None)  # warm imports/allocators
        times: dict[str, float] = {}
        samples: dict[str, np.ndarray] = {}
        for name, bs in (("per_sample", None), ("batched", N_SAMPLES)):
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                res = _run_mc(model, bs)
                best = min(best, time.perf_counter() - start)
            times[name] = best
            samples[name] = res.samples
    bit_identical = bool(np.array_equal(samples["per_sample"],
                                        samples["batched"]))
    speedup = times["per_sample"] / times["batched"]
    return {
        "workload": {
            "figure": "fig7-style MC batch",
            "points_per_side": POINTS_PER_SIDE,
            "n_samples": N_SAMPLES,
            "frequency_ghz": FREQUENCY_HZ / GHZ,
            "seed": SEED,
        },
        "per_sample_s": times["per_sample"],
        "batched_s": times["batched"],
        "per_sample_throughput": N_SAMPLES / times["per_sample"],
        "batched_throughput": N_SAMPLES / times["batched"],
        "speedup": speedup,
        "bit_identical": bit_identical,
        "min_speedup_gate": MIN_SPEEDUP,
    }


def _report(summary: dict) -> None:
    print(f"per-sample: {summary['per_sample_s']:7.3f} s  "
          f"({summary['per_sample_throughput']:.1f} samples/s)")
    print(f"batched:    {summary['batched_s']:7.3f} s  "
          f"({summary['batched_throughput']:.1f} samples/s)  "
          f"speedup x{summary['speedup']:.2f}")
    print(f"bit-identical samples: {summary['bit_identical']}")


def test_batched_mc_speedup(benchmark):
    summary = benchmark.pedantic(measure, iterations=1, rounds=1)
    print()
    _report(summary)
    assert summary["bit_identical"], \
        "batched MC samples diverged from the per-sample loop"
    assert summary["speedup"] >= MIN_SPEEDUP, \
        f"batched speedup x{summary['speedup']:.2f} below x{MIN_SPEEDUP}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write the JSON summary here")
    args = parser.parse_args()
    summary = measure()
    _report(summary)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.output}")
    if not summary["bit_identical"]:
        raise SystemExit("batched samples are not bit-identical")
    if summary["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup x{summary['speedup']:.2f} below gate x{MIN_SPEEDUP}")


if __name__ == "__main__":
    main()
