"""Engine scaling: serial vs parallel sweep execution, and cache-hit
replay latency.

The sweep is the Fig. 3-style workload (SSCM mean enhancement over a
frequency grid for several surface processes) — the unit of work every
figure of the paper repeats. Reported numbers:

- serial wall time (the pre-engine baseline execution model);
- parallel wall time + speedup at ``REPRO_BENCH_JOBS`` workers
  (default: half the cores, at least 2);
- warm-cache replay latency (zero SWM solves).
"""

import os
import time
import warnings

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import (
    EstimatorSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    StochasticScenario,
    SweepSpec,
    run_sweep,
)
from repro.surfaces import GaussianCorrelation

N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS",
                            max(2, (os.cpu_count() or 2) // 2)))


def _spec(n_freqs: int = 4) -> SweepSpec:
    scenarios = [
        StochasticScenario(
            f"eta{eta:g}um", GaussianCorrelation(1 * UM, eta * UM),
            StochasticLossConfig(points_per_side=12, max_modes=6))
        for eta in (1.0, 2.0)
    ]
    return SweepSpec(scenarios=scenarios,
                     frequencies_hz=np.linspace(1.0, 5.0, n_freqs) * GHZ,
                     estimators=EstimatorSpec(kind="sscm", order=1),
                     tags={"bench": "engine_scaling"})


def _timed(executor, cache) -> tuple[float, object]:
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = run_sweep(_spec(), executor=executor, cache=cache)
    return time.perf_counter() - start, result


def test_serial_vs_parallel_speedup(benchmark):
    serial_s, serial_res = _timed(SerialExecutor(), ResultCache())
    assert serial_res.n_evals > 0

    def parallel():
        return _timed(ParallelExecutor(n_jobs=N_JOBS), ResultCache())

    parallel_s, parallel_res = benchmark.pedantic(parallel, iterations=1,
                                                  rounds=1)
    print(f"\nserial:   {serial_s:7.2f} s  ({serial_res.summary()})")
    print(f"parallel: {parallel_s:7.2f} s  at n_jobs={N_JOBS}  "
          f"speedup x{serial_s / parallel_s:.2f}")
    for name in ("eta1um", "eta2um"):
        diff = np.abs(serial_res.mean_curve(name) -
                      parallel_res.mean_curve(name))
        assert np.max(diff) <= 1e-12


def test_cache_hit_replay_latency(benchmark, tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    warm_s, warm_res = _timed(SerialExecutor(), cache)

    def replay():
        # Fresh memory tier: every hit comes off the on-disk store.
        return _timed(SerialExecutor(), ResultCache(disk_dir=tmp_path))

    replay_s, replay_res = benchmark.pedantic(replay, iterations=1,
                                              rounds=5)
    assert replay_res.cache_hits == replay_res.n_points
    assert replay_res.n_evals == 0
    print(f"\ncold sweep: {warm_s:7.3f} s  ({warm_res.summary()})")
    print(f"warm replay:{replay_s:8.4f} s  "
          f"(x{warm_s / max(replay_s, 1e-9):.0f} faster, zero solves)")
