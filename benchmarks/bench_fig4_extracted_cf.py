"""Fig. 4 benchmark: SWM vs SPM2 with the extracted CF of eq. (12)."""

from conftest import run_and_report


def test_fig4_extracted_cf(benchmark, scale):
    run_and_report(benchmark, "fig4", scale)
