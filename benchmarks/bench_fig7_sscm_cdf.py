"""Fig. 7 benchmark: CDF of Pr/Ps — Monte-Carlo vs 1st/2nd-order SSCM."""

from conftest import run_and_report


def test_fig7_sscm_cdf(benchmark, scale):
    run_and_report(benchmark, "fig7", scale)
