"""Solver-cost scaling: one deterministic SWM solve vs grid size.

Gives the per-sample cost underlying Table I's economics: SSCM needs
~33 of these per frequency where MC needs 5000. Also prints the
enhancement so the bench doubles as a regression canary.
"""

import warnings

import numpy as np
import pytest

from repro.constants import GHZ
from repro.surfaces import GaussianCorrelation, SurfaceGenerator
from repro.swm.solver import SWMSolver3D


@pytest.mark.parametrize("n", [8, 12, 16, 20])
def test_swm_solve_scaling(benchmark, n):
    gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, n,
                           normalize=True)
    heights = gen.sample(0).heights
    solver = SWMSolver3D()
    # Warm the kernel-table cache: steady-state per-sample cost is what
    # matters for MC/SSCM sweeps.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        solver.solve_um(heights, 5.0, 5 * GHZ)
        res = benchmark(solver.solve_um, heights, 5.0, 5 * GHZ)
    print(f"\nn={n} (N={n * n} unknowns): Pr/Ps = {res.enhancement:.4f}")
    assert np.isfinite(res.enhancement)
    assert res.enhancement > 0.9
