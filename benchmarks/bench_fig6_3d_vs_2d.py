"""Fig. 6 benchmark: 3D SWM vs 2D SWM loss enhancement."""

from conftest import run_and_report


def test_fig6_3d_vs_2d(benchmark, scale):
    run_and_report(benchmark, "fig6", scale)
