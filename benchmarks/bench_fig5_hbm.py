"""Fig. 5 benchmark: SWM vs HBM on the half-spheroid boss."""

from conftest import run_and_report


def test_fig5_spheroid_vs_hbm(benchmark, scale):
    run_and_report(benchmark, "fig5", scale)
