"""Ablation: tabulated fast kernel vs exact Ewald assembly.

DESIGN.md calls out the tabulated-kernel fast path as the enabling design
choice for the stochastic experiments (hundreds of solver calls per
frequency share one table build). This bench measures both paths on the
same mesh and asserts the fast path is (a) substantially faster and
(b) numerically equivalent.
"""

import numpy as np
import pytest

from repro.constants import GHZ, METER_TO_UM
from repro.materials import PAPER_SYSTEM
from repro.surfaces import GaussianCorrelation, SurfaceGenerator
from repro.swm.assembly import AssemblyOptions, assemble_medium
from repro.swm.geometry import build_mesh_3d


@pytest.fixture(scope="module")
def mesh():
    gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 12,
                           normalize=True)
    return build_mesh_3d(gen.sample(0).heights, 5.0)


K2 = PAPER_SYSTEM.k2(5 * GHZ) / METER_TO_UM


def test_exact_ewald_assembly(benchmark, mesh):
    opts = AssemblyOptions(use_tables=False)
    d, s = benchmark.pedantic(assemble_medium, args=(mesh, K2, opts),
                              iterations=1, rounds=2)
    assert np.all(np.isfinite(s))


def test_tabulated_assembly(benchmark, mesh):
    opts = AssemblyOptions(use_tables=True)
    d_fast, s_fast = benchmark.pedantic(assemble_medium,
                                        args=(mesh, K2, opts),
                                        iterations=1, rounds=3)
    d_ref, s_ref = assemble_medium(mesh, K2,
                                   AssemblyOptions(use_tables=False))
    scale = np.max(np.abs(s_ref))
    assert np.max(np.abs(s_fast - s_ref)) < 5e-6 * scale
    print("\nfast kernel matches exact Ewald to "
          f"{np.max(np.abs(s_fast - s_ref)) / scale:.2e} relative")
