"""Service overhead: warm-cache HTTP requests vs in-process engine.

Against a fully warm cache every sweep point is a replay — zero SWM
solves — so this benchmark isolates what the service *adds*: wire
(de)serialization, the scheduler's hit/pending split, and one HTTP
round-trip per submit/poll/fetch. Reported numbers:

- in-process warm `run_sweep` latency (the floor);
- HTTP warm `ServiceClient.run_sweep` latency + requests/second over a
  burst of repeat submissions (throughput of the service's hot path).

The sweep is the engine-scaling workload (Fig. 3-style SSCM points) at
a small grid so the cold warm-up fits CI budgets.
"""

import threading
import time
import warnings

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import (
    EstimatorSpec,
    ResultCache,
    SerialExecutor,
    StochasticScenario,
    SweepSpec,
    run_sweep,
)
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.surfaces import GaussianCorrelation

N_BURST = 25


def _spec(n_freqs: int = 4) -> SweepSpec:
    scenarios = [
        StochasticScenario(
            f"eta{eta:g}um", GaussianCorrelation(1 * UM, eta * UM),
            StochasticLossConfig(points_per_side=10, max_modes=4))
        for eta in (1.0, 2.0)
    ]
    return SweepSpec(scenarios=scenarios,
                     frequencies_hz=np.linspace(1.0, 5.0, n_freqs) * GHZ,
                     estimators=EstimatorSpec(kind="sscm", order=1),
                     tags={"bench": "service"})


@pytest.fixture(scope="module")
def warm_service():
    """A live server over a warm cache, plus the in-process reference."""
    cache = ResultCache(disk_dir=None)
    spec = _spec()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        reference = run_sweep(spec, executor=SerialExecutor(), cache=cache)
    server = make_server(port=0, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", poll_interval=0.005)
    yield spec, cache, reference, client
    server.service.shutdown()
    server.shutdown()
    thread.join(5)


def test_warm_latency_http_vs_inprocess(benchmark, warm_service):
    spec, cache, reference, client = warm_service

    start = time.perf_counter()
    local = run_sweep(spec, executor=SerialExecutor(), cache=cache)
    local_s = time.perf_counter() - start
    assert local.cache_hits == local.n_points

    def remote():
        return client.run_sweep(spec, timeout=60)

    result = benchmark.pedantic(remote, iterations=1, rounds=5)
    assert result.cache_hits == result.n_points
    for name in ("eta1um", "eta2um"):
        assert np.array_equal(reference.mean_curve(name),
                              result.mean_curve(name))
    remote_s = benchmark.stats.stats.mean
    print(f"\nwarm in-process: {local_s * 1e3:8.2f} ms")
    print(f"warm HTTP:       {remote_s * 1e3:8.2f} ms "
          f"(x{remote_s / max(local_s, 1e-9):.1f} the in-process floor; "
          f"submit + poll + result fetch)")


def test_warm_request_throughput(benchmark, warm_service):
    spec, _, _, client = warm_service

    def burst():
        for _ in range(N_BURST):
            ticket = client.submit(spec)
            status = client.wait(ticket, timeout=60)
            assert status["state"] == "complete"
        return N_BURST

    n = benchmark.pedantic(burst, iterations=1, rounds=3)
    elapsed = benchmark.stats.stats.mean
    print(f"\n{n} warm submissions in {elapsed:.2f} s "
          f"-> {n / elapsed:7.1f} sweeps/s "
          f"({n * spec.n_jobs / elapsed:7.1f} points/s served from cache)")
