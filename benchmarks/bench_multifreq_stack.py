"""Frequency-stacked job execution vs the per-frequency loop.

The workload is a fig3-style frequency sweep of one stochastic
scenario (Gaussian CF, sigma = eta = 1 um) with a Monte-Carlo
estimator: the same mesh batch solved at every sweep frequency — the
shape the engine's ``execute_job_group`` fuses. Measured both ways
through the same job specs:

- per-frequency: ``execute_job`` once per job — each frequency
  re-realizes the sample meshes and re-derives every k-independent
  assembly intermediate (the pre-fusion execution model);
- stacked: ``execute_job_group`` over the whole frequency stack — the
  meshes are realized once, the k-independent
  :class:`~repro.swm.plan.AssemblyPlan` is built once per estimator
  block, and only the k-dependent scaling + factorization runs per
  frequency.

Payloads must come back **bit-identical** per job (same xi stream,
same estimator chunking, same LAPACK); the benchmark asserts that
before it reports throughput. Reference numbers from the 1-core dev
container: ~1.5x at the quick grid with 6 frequencies, growing with
the frequency count as the plan amortizes further.

Run under pytest (``pytest benchmarks/bench_multifreq_stack.py``) or
directly (``python benchmarks/bench_multifreq_stack.py --output
out.json``) to write the JSON summary CI uploads with the experiment
artifacts.
"""

import argparse
import json
import os
import time
import warnings

import numpy as np

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import EstimatorSpec, StochasticScenario, SweepSpec
from repro.engine.runtime import clear_memo, execute_job, execute_job_group
from repro.surfaces import GaussianCorrelation

#: Quick-scale fig3 shape: a handful of sweep frequencies over one
#: scenario, >= 8 MC samples per frequency.
N_FREQS = int(os.environ.get("REPRO_BENCH_MULTIFREQ_FREQS", "6"))
N_SAMPLES = int(os.environ.get("REPRO_BENCH_MC_SAMPLES", "8"))
POINTS_PER_SIDE = int(os.environ.get("REPRO_BENCH_GRID", "8"))
SEED = 0
#: CI gate: shared-runner benchmarks are noisy, so the hard floor sits
#: well under the dev-container measurement.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MULTIFREQ_MIN_SPEEDUP",
                                   "1.2"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _jobs():
    scenario = StochasticScenario(
        "fig3-mc", GaussianCorrelation(sigma=1 * UM, eta=1 * UM),
        StochasticLossConfig(points_per_side=POINTS_PER_SIDE,
                             max_modes=8))
    freqs = np.linspace(2.0, 12.0, N_FREQS) * GHZ
    est = EstimatorSpec(kind="montecarlo", n_samples=N_SAMPLES,
                        seed=SEED, batch_size=N_SAMPLES)
    return SweepSpec(scenario, freqs, est).jobs()


def measure() -> dict:
    """Time both paths (best of REPEATS) and verify bit-identity."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        jobs = _jobs()
        execute_job(jobs[0])  # warm imports/allocators/model memo
        times: dict[str, float] = {}
        values: dict[str, list[np.ndarray]] = {}
        runners = {
            "per_frequency": lambda: [execute_job(j) for j in jobs],
            "stacked": lambda: execute_job_group(jobs),
        }
        for name, runner in runners.items():
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                payloads = runner()
                best = min(best, time.perf_counter() - start)
            times[name] = best
            values[name] = [p["values"] for p in payloads]
    bit_identical = all(
        np.array_equal(a, b)
        for a, b in zip(values["per_frequency"], values["stacked"]))
    speedup = times["per_frequency"] / times["stacked"]
    n_solves = len(jobs) * N_SAMPLES
    clear_memo()
    return {
        "workload": {
            "figure": "fig3-style multi-frequency MC sweep",
            "points_per_side": POINTS_PER_SIDE,
            "n_frequencies": len(jobs),
            "n_samples": N_SAMPLES,
            "seed": SEED,
        },
        "per_frequency_s": times["per_frequency"],
        "stacked_s": times["stacked"],
        "per_frequency_throughput": n_solves / times["per_frequency"],
        "stacked_throughput": n_solves / times["stacked"],
        "speedup": speedup,
        "bit_identical": bit_identical,
        "min_speedup_gate": MIN_SPEEDUP,
    }


def _report(summary: dict) -> None:
    print(f"per-frequency: {summary['per_frequency_s']:7.3f} s  "
          f"({summary['per_frequency_throughput']:.1f} solves/s)")
    print(f"stacked:       {summary['stacked_s']:7.3f} s  "
          f"({summary['stacked_throughput']:.1f} solves/s)  "
          f"speedup x{summary['speedup']:.2f}")
    print(f"bit-identical payloads: {summary['bit_identical']}")


def test_multifreq_stack_speedup(benchmark):
    summary = benchmark.pedantic(measure, iterations=1, rounds=1)
    print()
    _report(summary)
    assert summary["bit_identical"], \
        "stacked payloads diverged from the per-frequency loop"
    assert summary["speedup"] >= MIN_SPEEDUP, \
        f"stacked speedup x{summary['speedup']:.2f} below x{MIN_SPEEDUP}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write the JSON summary here")
    args = parser.parse_args()
    summary = measure()
    _report(summary)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.output}")
    if not summary["bit_identical"]:
        raise SystemExit("stacked payloads are not bit-identical")
    if summary["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup x{summary['speedup']:.2f} below gate x{MIN_SPEEDUP}")


if __name__ == "__main__":
    main()
