"""Fig. 3 benchmark: SWM vs SPM2 vs empirical formula (Gaussian CF)."""

from conftest import run_and_report


def test_fig3_swm_vs_spm2(benchmark, scale):
    run_and_report(benchmark, "fig3", scale)
