"""Fig. 2 benchmark: rough-surface synthesis + statistics round trip."""

from conftest import run_and_report


def test_fig2_surface_round_trip(benchmark, scale):
    run_and_report(benchmark, "fig2", scale)
