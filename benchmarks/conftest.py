"""Shared helpers for the paper-figure benchmarks.

Each benchmark regenerates one table/figure of the paper at the scale
selected by ``REPRO_SCALE`` (default ``quick``), prints the series the
paper plots, and asserts the figure's qualitative checks. pytest-benchmark
times the regeneration.
"""

import warnings

import pytest

import repro.api
from repro.experiments import scale_from_env
from repro.experiments.base import ExperimentResult


@pytest.fixture(scope="session")
def scale():
    return scale_from_env()


def run_and_report(benchmark, experiment: str, scale,
                   **params) -> ExperimentResult:
    """Benchmark one registered experiment and print its table."""
    def target():
        with warnings.catch_warnings():
            # Reduced scales deliberately run into the documented
            # resolution warnings at the top of the band.
            warnings.simplefilter("ignore", RuntimeWarning)
            return repro.api.run(
                experiment, scale,
                experiment=repro.api.get(experiment, **params))

    result = benchmark.pedantic(target, iterations=1, rounds=1)
    print()
    print(result.format_table())
    assert result.all_checks_pass(), result.checks
    return result
