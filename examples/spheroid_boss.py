#!/usr/bin/env python
"""Deterministic protrusion study: SWM vs the hemispherical boss model.

The paper's Fig. 5 scenario: a single conducting half-spheroid
(h = 5.8 um, base diameter 9.4 um) on a patch, swept over 1-20 GHz where
the skin depth is small compared to the protrusion. HBM is the reference
in its own regime; SWM should track it, while SPM2 (fed an equivalent
sigma) collapses.

Run:  python examples/spheroid_boss.py
"""

import repro.api


def main() -> None:
    result = repro.api.run("fig5", scale="quick")
    print(result.format_table())
    print()
    ok = result.all_checks_pass()
    print("All qualitative checks pass." if ok
          else "WARNING: some qualitative checks failed.")


if __name__ == "__main__":
    main()
