#!/usr/bin/env python
"""PCB interconnect scenario: roughness-aware insertion loss budgeting.

The use case from the paper's introduction: off-chip signaling where the
rough copper foil breaks the smooth-conductor ``R ~ sqrt(f)`` law. We

1. characterize the foil as a Gaussian random surface (sigma, eta from
   a measured-profile stand-in),
2. compute the loss-enhancement factor K(f) with the SWM pipeline,
3. fold K(f) into a 50-ohm microstrip's RLGC profile, and
4. report the insertion-loss penalty over a 10 cm channel versus the
   smooth-copper assumption and the one-parameter empirical model.

Run:  python examples/pcb_insertion_loss.py
"""

import numpy as np

from repro import GaussianCorrelation, StochasticLossConfig, StochasticLossModel
from repro import hammerstad_enhancement
from repro.constants import GHZ, UM
from repro.interconnects import (
    EnhancementTable,
    Microstrip,
    abcd_line,
    abcd_to_s,
    insertion_loss_db,
)


def main() -> None:
    # --- 1. the foil --------------------------------------------------
    sigma, eta = 0.8 * UM, 1.5 * UM
    cf = GaussianCorrelation(sigma=sigma, eta=eta)
    print(f"Foil roughness: sigma = {sigma / UM:.1f} um, "
          f"eta = {eta / UM:.1f} um")

    # --- 2. K(f) from the SWM pipeline --------------------------------
    # Sample K(f) where the mesh resolves the skin depth (the solver
    # warns otherwise); the EnhancementTable holds the last value beyond
    # 10 GHz, which is conservative because K(f) saturates.
    sample_freqs = np.array([1.0, 2.0, 4.0, 6.0, 8.0, 10.0]) * GHZ
    model = StochasticLossModel(
        cf, StochasticLossConfig(points_per_side=16, max_modes=8))
    k_swm = np.maximum.accumulate(
        np.maximum(model.mean_enhancement(sample_freqs, order=1), 1.0))
    k_table = EnhancementTable(sample_freqs, k_swm)
    print("SWM K(f):", ", ".join(
        f"{f / GHZ:.0f}GHz:{k:.3f}" for f, k in zip(sample_freqs, k_swm)))

    # --- 3. the channel ------------------------------------------------
    line = Microstrip(width_m=200e-6, height_m=110e-6, eps_r=3.8,
                      loss_tangent=0.012)
    print(f"Microstrip Z0 = {line.characteristic_impedance():.1f} ohm")
    length = 0.10  # meters
    freqs = np.linspace(0.5, 20.0, 60) * GHZ

    def il(factor=None):
        rlgc = line.rlgc(roughness_factor=factor)
        return insertion_loss_db(abcd_to_s(abcd_line(rlgc, length, freqs)))

    il_smooth = il(None)
    il_swm = il(k_table)
    il_emp = il(lambda f: hammerstad_enhancement(f, sigma))

    # --- 4. the budget -------------------------------------------------
    print()
    print(f"Insertion loss of a {length * 100:.0f} cm channel:")
    print(f"{'f (GHz)':>8} | {'smooth':>8} | {'SWM-rough':>10} | "
          f"{'empirical':>10} | {'penalty(SWM)':>12}")
    print("-" * 60)
    for idx in range(0, freqs.size, 10):
        f = freqs[idx]
        print(f"{f / GHZ:8.1f} | {il_smooth[idx]:8.2f} | "
              f"{il_swm[idx]:10.2f} | {il_emp[idx]:10.2f} | "
              f"{il_swm[idx] - il_smooth[idx]:12.2f}")
    worst = np.argmax(il_swm - il_smooth)
    print()
    print(f"Max roughness penalty: {il_swm[worst] - il_smooth[worst]:.2f} dB "
          f"at {freqs[worst] / GHZ:.1f} GHz "
          f"({(il_swm[worst] / il_smooth[worst] - 1) * 100:.0f}% over smooth)")


if __name__ == "__main__":
    main()
