#!/usr/bin/env python
"""SSCM vs Monte-Carlo: the statistics of the rough-surface loss factor.

Reproduces the paper's Fig. 7/Table I workflow at a laptop-friendly
scale: KL-reduce the random surface, run 1st- and 2nd-order SSCM, compare
their means/CDFs against Monte-Carlo, and report how many deterministic
solves each needed.

Run:  python examples/stochastic_analysis.py
"""

import numpy as np

from repro import GaussianCorrelation, StochasticLossConfig, StochasticLossModel
from repro.constants import GHZ, UM


def main() -> None:
    freq = 5.0 * GHZ
    model = StochasticLossModel(
        GaussianCorrelation(sigma=1.0 * UM, eta=1.0 * UM),
        StochasticLossConfig(points_per_side=12, max_modes=8))
    print(f"KL reduction: M = {model.dimension} modes "
          f"({model.kl.captured_fraction:.1%} of the height variance)")

    print("\nRunning Monte-Carlo (48 samples)...")
    mc = model.montecarlo(freq, 48, seed=11)
    print("Running 1st-order SSCM...")
    ss1 = model.sscm(freq, order=1)
    print("Running 2nd-order SSCM...")
    ss2 = model.sscm(freq, order=2)

    print(f"\n{'method':>10} | {'solves':>6} | {'mean':>8} | {'std':>8}")
    print("-" * 42)
    print(f"{'MC':>10} | {mc.n_samples:6d} | {mc.mean:8.4f} | {mc.std:8.4f}")
    print(f"{'1st SSCM':>10} | {ss1.n_samples:6d} | {ss1.mean:8.4f} | "
          f"{ss1.std:8.4f}")
    print(f"{'2nd SSCM':>10} | {ss2.n_samples:6d} | {ss2.mean:8.4f} | "
          f"{ss2.std:8.4f}")

    lo, hi = mc.samples.min(), mc.samples.max()
    grid = np.linspace(lo, hi, 9)
    mc_sorted = np.sort(mc.samples)
    surro = np.sort(ss2.sample_surrogate(20000, seed=1))
    print(f"\nCDF of Pr/Ps at {freq / GHZ:.0f} GHz "
          f"(MC vs 2nd-SSCM surrogate):")
    print(f"{'Pr/Ps':>8} | {'F_MC':>6} | {'F_SSCM2':>8}")
    print("-" * 30)
    for x in grid:
        f_mc = np.searchsorted(mc_sorted, x, side='right') / mc_sorted.size
        f_ss = np.searchsorted(surro, x, side='right') / surro.size
        print(f"{x:8.3f} | {f_mc:6.3f} | {f_ss:8.3f}")
    print("\n(2nd-order SSCM reproduces the MC distribution with an order")
    print("of magnitude fewer boundary-element solves — the paper's Table I.)")


if __name__ == "__main__":
    main()
