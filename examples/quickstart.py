#!/usr/bin/env python
"""Quickstart: the declarative experiment API (`repro.api`).

Every figure/table of the paper is a registered Experiment:
``plan(scale)`` describes all of its solver-backed points as one
engine SweepSpec (inspectable for free), ``run`` executes the spec —
parallel across the whole figure with ``jobs=N``, replayable from a
persistent cache with ``cache_dir=...`` — and reduces it to series +
qualitative checks.

Run:  python examples/quickstart.py
"""

import repro.api


def main() -> None:
    print("Registered experiments:", ", ".join(repro.api.experiments()))
    print()

    # Dry-run inspection: Fig. 3 is one multi-scenario sweep — every
    # roughness case x every frequency under the SSCM estimator — not a
    # per-curve loop. Nothing is solved here.
    spec = repro.api.plan("fig3", scale="quick")
    print("Fig. 3 plan at scale 'quick':")
    print(f"  scenarios   : {[s.name for s in spec.scenarios]}")
    print(f"  frequencies : {len(spec.frequencies_hz)}")
    print(f"  total jobs  : {spec.n_jobs} "
          "(each content-hashed for the result cache)")
    print(f"  first job   : {spec.jobs()[0].key[:16]}...")
    print()

    # Execute a cheap experiment end to end. Table I counts sampling
    # points (no SWM solves), so this returns in seconds; for the
    # solver-backed figures add jobs=4 and cache_dir="./sweep-cache".
    result = repro.api.run("table1", scale="quick")
    print(result.format_table())
    print()

    # One merged job stream for several experiments: parallelism and
    # cache lookups span the whole selection.
    results = repro.api.run_many(["fig2", "table1"], scale="quick")
    for name, res in results.items():
        status = "PASS" if res.all_checks_pass() else "FAIL"
        print(f"{name}: {len(res.series)} series, checks {status}")
    print()
    print("Next: repro.api.run('fig3', scale='quick', jobs=4) runs the")
    print("whole figure as one parallel sweep; see examples/ for the")
    print("lower-level pipeline and engine APIs.")


if __name__ == "__main__":
    main()
