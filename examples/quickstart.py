#!/usr/bin/env python
"""Quickstart: loss-enhancement factor of one rough copper surface.

Generates a 3D Gaussian rough surface (sigma = eta = 1 um, the paper's
Fig. 2 setting), solves the scalar-wave model at a few frequencies, and
compares against the closed-form baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GaussianCorrelation, SWMSolver3D, SurfaceGenerator
from repro import hammerstad_enhancement, spm2_enhancement
from repro.constants import GHZ, UM
from repro.surfaces import extract_statistics


def main() -> None:
    sigma_um, eta_um = 1.0, 1.0
    period_um = 5.0 * eta_um  # the paper's L = 5 eta
    n = 16                     # grid points per side (paper: 40)

    cf_um = GaussianCorrelation(sigma=sigma_um, eta=eta_um)
    generator = SurfaceGenerator(cf_um, period=period_um, n=n, normalize=True)
    surface = generator.sample(rng=2009)

    stats = extract_statistics(surface.heights, period_um)
    print("Surface realization:")
    print(f"  sigma      = {stats.sigma:.3f} um (target {sigma_um})")
    print(f"  corr. len. = {stats.correlation_length:.3f} um (target {eta_um})")
    print(f"  RMS slope  = {stats.rms_slope:.3f}")
    print()

    solver = SWMSolver3D()
    cf_si = GaussianCorrelation(sigma=sigma_um * UM, eta=eta_um * UM)
    freqs = np.array([1.0, 3.0, 5.0, 7.0, 9.0]) * GHZ

    print(f"{'f (GHz)':>8} | {'SWM Pr/Ps':>10} | {'SPM2':>8} | {'eq.(1)':>8}")
    print("-" * 44)
    spm = spm2_enhancement(freqs, cf_si)
    emp = hammerstad_enhancement(freqs, sigma_um * UM)
    for i, f in enumerate(freqs):
        res = solver.solve_um(surface.heights, period_um, float(f))
        print(f"{f / GHZ:8.1f} | {res.enhancement:10.4f} | "
              f"{spm[i]:8.4f} | {emp[i]:8.4f}")
    print()
    print("Note: this is a single realization on a coarse grid; the paper")
    print("reports SSCM ensemble means (see examples/stochastic_analysis.py).")


if __name__ == "__main__":
    main()
