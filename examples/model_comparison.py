#!/usr/bin/env python
"""Model validity map: where each roughness-loss model can be trusted.

Sweeps the roughness level (sigma/eta at fixed eta) and frequency, and
tabulates SWM against SPM2, the empirical eq. (1), HBM-style saturation
and the Huray model — reproducing the paper's core argument that the
closed forms are each valid only in a corner of the parameter space
while SWM covers the range.

Run:  python examples/model_comparison.py
"""

import numpy as np

from repro import GaussianCorrelation, SWMSolver3D, SurfaceGenerator
from repro import HurayModel, hammerstad_enhancement, spm2_enhancement
from repro.constants import GHZ, UM
from repro.models.empirical import hemispherical_area_limit


def swm_mean(sigma_um: float, eta_um: float, f_hz: float,
             n_samples: int = 4, n: int = 12) -> float:
    cf = GaussianCorrelation(sigma=sigma_um, eta=eta_um)
    gen = SurfaceGenerator(cf, period=5.0 * eta_um, n=n, normalize=True)
    solver = SWMSolver3D()
    rng = np.random.default_rng(7)
    vals = [solver.solve_um(gen.sample(rng).heights, 5.0 * eta_um,
                            f_hz).enhancement
            for _ in range(n_samples)]
    return float(np.mean(vals))


def main() -> None:
    eta_um = 1.0
    freq = 5.0 * GHZ
    print(f"Loss enhancement at {freq / GHZ:.0f} GHz, eta = {eta_um} um, "
          f"roughness sweep (sigma varies):\n")
    print(f"{'sigma(um)':>9} | {'SWM':>7} | {'SPM2':>7} | {'eq.(1)':>7} | "
          f"{'area-limit':>10} | {'Huray':>7}")
    print("-" * 62)
    for sigma_um in (0.1, 0.3, 0.5, 1.0, 1.5):
        cf_si = GaussianCorrelation(sigma=sigma_um * UM, eta=eta_um * UM)
        swm = swm_mean(sigma_um, eta_um, freq)
        spm = float(spm2_enhancement(np.array([freq]), cf_si)[0])
        emp = float(hammerstad_enhancement(np.array([freq]), sigma_um * UM)[0])
        slope = np.sqrt(cf_si.slope_variance_2d())
        area = hemispherical_area_limit(slope)
        huray = float(HurayModel.cannonball(
            rz_m=5.0 * sigma_um * UM).enhancement(np.array([freq]))[0])
        print(f"{sigma_um:9.2f} | {swm:7.3f} | {spm:7.3f} | {emp:7.3f} | "
              f"{area:10.3f} | {huray:7.3f}")
    print()
    print("Reading the table (the paper's Section I+IV argument):")
    print(" - small sigma: SWM ~ SPM2 (its valid corner); eq.(1) overshoots;")
    print(" - large sigma: SPM2 overshoots badly; SWM stays below the")
    print("   geometric area limit, as the physical loss must;")
    print(" - the one-parameter models cannot see eta at all.")


if __name__ == "__main__":
    main()
